package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"yosompc/internal/wire"
)

// TestManifestGoldenWire pins the byte-exact manifest layout
// (docs/WIRE.md): u8 version | str8 committee | str8 phase | u32 n |
// u32 quorum.
func TestManifestGoldenWire(t *testing.T) {
	m := Manifest{Committee: "offB1", Phase: "offline", N: 20, Quorum: 15}
	golden := []byte{
		0x02,                          // version
		0x05, 'o', 'f', 'f', 'B', '1', // committee
		0x07, 'o', 'f', 'f', 'l', 'i', 'n', 'e', // phase
		0x00, 0x00, 0x00, 0x14, // n
		0x00, 0x00, 0x00, 0x0f, // quorum
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, golden) {
		t.Errorf("encoded manifest:\n got %x\nwant %x", enc, golden)
	}
	if len(enc) != m.EncodedSize() {
		t.Errorf("EncodedSize = %d, encoded %d bytes", m.EncodedSize(), len(enc))
	}
	var dec Manifest
	if err := dec.UnmarshalBinary(golden); err != nil {
		t.Fatal(err)
	}
	if dec != m {
		t.Errorf("decoded = %+v, want %+v", dec, m)
	}
	if got := m.Speaker(3); got != "offB1/3" {
		t.Errorf("Speaker(3) = %q, want %q", got, "offB1/3")
	}
}

func TestManifestStreamRoundTrip(t *testing.T) {
	in := []Manifest{
		{Committee: "onC1", Phase: "online", N: 12, Quorum: 7},
		{Committee: "on-layer2", Phase: "online", N: 64, Quorum: 33},
		{Committee: "", Phase: "", N: 0, Quorum: 0},
	}
	var buf bytes.Buffer
	for _, m := range in {
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range in {
		var got Manifest
		if _, err := got.ReadFrom(&buf); err != nil {
			t.Fatalf("manifest %d: %v", i, err)
		}
		if got != want {
			t.Errorf("manifest %d = %+v, want %+v", i, got, want)
		}
	}
	var extra Manifest
	if _, err := extra.ReadFrom(&buf); err != io.EOF {
		t.Errorf("read past stream end = %v, want io.EOF", err)
	}
}

func TestManifestDecodeRejectsMalformed(t *testing.T) {
	good, _ := Manifest{Committee: "offR", Phase: "offline", N: 8, Quorum: 5}.MarshalBinary()
	cases := map[string][]byte{
		"empty":         {},
		"wrong version": append([]byte{0x7f}, good[1:]...),
		"truncated":     good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0x00),
	}
	for name, data := range cases {
		var m Manifest
		if err := m.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		} else if name != "truncated" && !errors.Is(err, wire.ErrMalformed) {
			t.Errorf("%s: err = %v, not wire.ErrMalformed", name, err)
		}
	}
	// Mid-frame EOF on a stream is io.ErrUnexpectedEOF, never a silent stop.
	var m Manifest
	if _, err := m.ReadFrom(bytes.NewReader(good[:len(good)-1])); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-frame stream EOF = %v, want io.ErrUnexpectedEOF", err)
	}
}

// FuzzManifestRoundTrip feeds arbitrary bytes through the Manifest decoder:
// it must never panic, and anything it accepts must re-encode to the exact
// same bytes (canonical encoding).
func FuzzManifestRoundTrip(f *testing.F) {
	seed, _ := Manifest{Committee: "offB2", Phase: "offline", N: 20, Quorum: 11}.MarshalBinary()
	f.Add(seed)
	empty, _ := Manifest{}.MarshalBinary()
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Manifest
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encoding accepted manifest: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not byte-identical:\n in %x\nout %x", data, re)
		}
	})
}
