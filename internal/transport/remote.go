package transport

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"yosompc/internal/comm"
	"yosompc/internal/telemetry"
)

// A networked bulletin-board service: the deployment-shaped counterpart of
// the in-process Board. A Server accepts TCP connections speaking a
// newline-delimited JSON protocol with two requests:
//
//	{"op":"post", "from":…, "phase":…, "category":…, "size":…, "summary":…}
//	  → {"ok":true, "seq":N}
//	{"op":"tail", "since":N}
//	  → a stream of Entry lines, first the backlog from N, then live posts
//
// Payload *contents* stay with the poster (the protocol drivers work on
// in-process values); the service carries the public metadata — who
// posted, in which phase/category, how many bytes — which is exactly what
// remote observers audit and what the communication experiments measure.
// A Mirror forwards an in-process run's postings to a Server as they
// happen.

// Entry is the wire form of one posting.
type Entry struct {
	Seq      int    `json:"seq"`
	From     string `json:"from"`
	Phase    string `json:"phase"`
	Category string `json:"category"`
	Size     int    `json:"size"`
	// Summary is an optional human-readable description of the payload.
	Summary string `json:"summary,omitempty"`
}

type request struct {
	Op       string `json:"op"`
	From     string `json:"from,omitempty"`
	Phase    string `json:"phase,omitempty"`
	Category string `json:"category,omitempty"`
	Size     int    `json:"size,omitempty"`
	Summary  string `json:"summary,omitempty"`
	Since    int    `json:"since,omitempty"`
}

type response struct {
	OK    bool   `json:"ok"`
	Seq   int    `json:"seq,omitempty"`
	Error string `json:"error,omitempty"`
}

// tailBuffer is the per-subscription live-delivery channel capacity.
const tailBuffer = 256

// subscriber is one live tail subscription. `gapped` is guarded by the
// Server mutex: post sets it instead of blocking when the channel is full,
// and the tail loop re-syncs from the entry log before delivering anything
// further, so a slow tailer still observes every Seq exactly once.
type subscriber struct {
	ch     chan Entry
	conn   net.Conn
	gapped bool
}

// Server is a bulletin-board service instance.
type Server struct {
	ln    net.Listener
	meter *comm.Meter

	mu      sync.Mutex
	entries []Entry
	subs    map[*subscriber]struct{}
	closed  bool

	// Telemetry instruments, nil (no-op, zero cost) until Instrument is
	// called. Time is only read when the corresponding histogram is set.
	postCount *telemetry.Counter   // transport.posts
	postBytes *telemetry.Histogram // transport.post_bytes
	postNS    *telemetry.Histogram // transport.post_ns
	tailNS    *telemetry.Histogram // transport.tail_write_ns
	resyncs   *telemetry.Counter   // transport.tail_resyncs
	tailLag   *telemetry.Gauge     // transport.tail_lag_max
	reaps     *telemetry.Counter   // transport.conn_reaps

	wg sync.WaitGroup
}

// Instrument registers the server's transport metrics on reg and starts
// recording:
//
//	transport.posts         counter    accepted post requests
//	transport.post_bytes    histogram  metered posting sizes
//	transport.post_ns       histogram  post handling latency
//	transport.tail_write_ns histogram  per-entry tail delivery latency
//	transport.tail_resyncs  counter    gapped-subscription log re-syncs
//	transport.tail_lag_max  gauge      largest backlog a re-sync replayed
//	transport.conn_reaps    counter    dead tail connections reaped
//
// Call it before the server takes traffic; a nil registry leaves the
// server uninstrumented at zero cost.
func (s *Server) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.postCount = reg.Counter("transport.posts")
	s.postBytes = reg.Histogram("transport.post_bytes", telemetry.SizeBuckets)
	s.postNS = reg.Histogram("transport.post_ns", telemetry.DurationBuckets)
	s.tailNS = reg.Histogram("transport.tail_write_ns", telemetry.DurationBuckets)
	s.resyncs = reg.Counter("transport.tail_resyncs")
	s.tailLag = reg.Gauge("transport.tail_lag_max")
	s.reaps = reg.Counter("transport.conn_reaps")
}

// Serve starts a server on the listener and returns immediately; Close
// shuts it down and waits for the connection handlers.
func Serve(ln net.Listener) *Server {
	s := &Server{
		ln:    ln,
		meter: &comm.Meter{},
		subs:  map[*subscriber]struct{}{},
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Len returns the number of stored entries.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Report returns the byte accounting of everything posted so far.
func (s *Server) Report() comm.Report { return s.meter.Report() }

// Close stops accepting connections, terminates tailers and waits for all
// handlers to exit.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.closed = true
	for sub := range s.subs {
		close(sub.ch)
		// Unblock a tail loop stuck writing to a stalled client.
		_ = sub.conn.Close()
	}
	s.subs = map[*subscriber]struct{}{}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		switch req.Op {
		case "post":
			seq, err := s.post(req)
			if err != nil {
				_ = enc.Encode(response{Error: err.Error()})
				continue
			}
			if err := enc.Encode(response{OK: true, Seq: seq}); err != nil {
				return
			}
		case "tail":
			s.tail(conn, enc, req.Since)
			return // tail owns the connection until shutdown
		default:
			_ = enc.Encode(response{Error: fmt.Sprintf("unknown op %q", req.Op)})
		}
	}
}

func (s *Server) post(req request) (int, error) {
	if req.Size < 0 {
		return 0, errors.New("negative size")
	}
	if req.From == "" {
		return 0, errors.New("missing poster")
	}
	var start time.Time
	if s.postNS != nil {
		start = time.Now()
	}
	s.meter.Add(comm.Phase(req.Phase), comm.Category(req.Category), req.Size)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := Entry{
		Seq:      len(s.entries),
		From:     req.From,
		Phase:    req.Phase,
		Category: req.Category,
		Size:     req.Size,
		Summary:  req.Summary,
	}
	s.entries = append(s.entries, e)
	for sub := range s.subs {
		select {
		case sub.ch <- e:
		default:
			// Slow tailer: never block the board, but never silently lose
			// the entry either — mark the subscription gapped so its tail
			// loop re-syncs from the entry log before delivering more.
			sub.gapped = true
		}
	}
	s.postCount.Inc()
	s.postBytes.Observe(float64(req.Size))
	if s.postNS != nil {
		s.postNS.Observe(float64(time.Since(start)))
	}
	return e.Seq, nil
}

func (s *Server) tail(conn net.Conn, enc *json.Encoder, since int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if since < 0 {
		since = 0
	}
	next := since // next sequence number owed to this tailer
	backlog := make([]Entry, 0)
	if since < len(s.entries) {
		backlog = append(backlog, s.entries[since:]...)
	}
	sub := &subscriber{ch: make(chan Entry, tailBuffer), conn: conn}
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sub)
		s.mu.Unlock()
	}()
	// Watch for the client going away. Without this, a tail loop with no
	// incoming posts would block on the subscription channel forever,
	// pinning the handler goroutine and the connection until server
	// shutdown. The tailer never sends after its initial request, so any
	// read completing means the connection is dead.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				s.mu.Lock()
				if _, ok := s.subs[sub]; ok {
					delete(s.subs, sub)
					close(sub.ch)
					s.reaps.Inc()
				}
				s.mu.Unlock()
				return
			}
		}
	}()
	// send delivers e unless it was already delivered via a re-sync
	// (entries can arrive both on the live channel and in a re-sync
	// batch; Seq ordering dedupes them).
	send := func(e Entry) bool {
		if e.Seq < next {
			return true
		}
		var start time.Time
		if s.tailNS != nil {
			start = time.Now()
		}
		if err := enc.Encode(e); err != nil {
			return false
		}
		if s.tailNS != nil {
			s.tailNS.Observe(float64(time.Since(start)))
		}
		next = e.Seq + 1
		return true
	}
	for _, e := range backlog {
		if !send(e) {
			return
		}
	}
	for e := range sub.ch {
		// If post ever found the channel full it set gapped: re-read the
		// authoritative log from `next` so the client still sees every
		// entry exactly once, in order. A drop implies the channel was
		// full, so there is always a later receive to reach this check.
		s.mu.Lock()
		var resync []Entry
		if sub.gapped || e.Seq > next {
			resync = append(resync, s.entries[next:]...)
			sub.gapped = false
			s.resyncs.Inc()
			s.tailLag.Max(int64(len(resync)))
		}
		s.mu.Unlock()
		for _, re := range resync {
			if !send(re) {
				return
			}
		}
		if !send(e) {
			return
		}
	}
}

// Client posts entries to a remote board.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a board server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing board %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Post publishes one entry and returns its sequence number.
func (c *Client) Post(from string, phase comm.Phase, cat comm.Category, size int, summary string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.enc.Encode(request{
		Op: "post", From: from, Phase: string(phase), Category: string(cat),
		Size: size, Summary: summary,
	})
	if err != nil {
		return 0, fmt.Errorf("transport: posting: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return 0, fmt.Errorf("transport: reading post response: %w", err)
	}
	if !resp.OK {
		return 0, fmt.Errorf("transport: board rejected post: %s", resp.Error)
	}
	return resp.Seq, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Tail opens a streaming subscription from sequence `since`, delivering
// entries on the returned channel until the connection or server closes.
func Tail(addr string, since int) (<-chan Entry, func() error, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: dialing board %s: %w", addr, err)
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(request{Op: "tail", Since: since}); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("transport: starting tail: %w", err)
	}
	out := make(chan Entry, 64)
	done := make(chan struct{})
	var once sync.Once
	stop := func() error {
		err := conn.Close()
		once.Do(func() { close(done) })
		return err
	}
	go func() {
		defer close(out)
		dec := json.NewDecoder(bufio.NewReader(conn))
		for {
			var e Entry
			if err := dec.Decode(&e); err != nil {
				return
			}
			select {
			case out <- e:
			case <-done:
				// The consumer stopped draining and called the closer:
				// exit instead of blocking on the send forever (which
				// would leak this goroutine and pin the connection).
				return
			}
		}
	}()
	return out, stop, nil
}

// AttachMirror forwards every posting of an in-process board to a remote
// server as it happens (metadata + sizes; payloads stay local — they are
// Go values, and the public record the service carries is who posted how
// many bytes of what). Remote failures degrade silently: the local board
// is authoritative and observability is best-effort by design. The
// returned closer releases the connection.
func AttachMirror(board *Board, addr string) (func() error, error) {
	client, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	board.Observe(func(p Posting) {
		_, _ = client.Post(p.From, p.Phase, p.Category, p.Size, fmt.Sprintf("%T", p.Payload))
	})
	return client.Close, nil
}
