package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"yosompc/internal/comm"
	"yosompc/internal/telemetry"
	"yosompc/internal/wire"
)

// A networked bulletin-board service: the deployment-shaped counterpart of
// the in-process Board. A Server accepts TCP connections speaking the
// binary protocol of docs/WIRE.md. Every frame starts with the wire
// version byte and an opcode:
//
//	post: ver | 0x01 | str8 from | str8 phase | str8 category |
//	      trace context | u32 claimed size | u32 payload len | payload
//	  → ver | status (0 ok: u32 seq; 1 err: u32 len | message)
//	tail: ver | 0x02 | u32 since
//	  → a stream of Entry frames, first the backlog from `since`, then
//	    live posts, until either side closes
//	dump: ver | 0x03 | u32 since
//	  → ver | u32 count | count × Entry — a one-shot snapshot, then the
//	    connection stays usable for further requests
//
// The payload is the message's real binary encoding; the server meters the
// *measured* payload length and rejects posts whose claimed size disagrees,
// so a poster cannot influence the byte accounting by lying. The trace
// context travels with the post, but its RecvUS field is authoritative
// only after the server overwrites it with its own receive clock — the
// shared timeline trace merging aligns against. A Mirror forwards an
// in-process run's postings — bytes included — to a Server as they happen.

// Protocol opcodes.
const (
	opPost byte = 0x01
	opTail byte = 0x02
	opDump byte = 0x03
)

// Post response statuses.
const (
	statusOK  byte = 0x00
	statusErr byte = 0x01
)

// tailBuffer is the per-subscription live-delivery channel capacity.
const tailBuffer = 256

// subscriber is one live tail subscription. `gapped` is guarded by the
// Server mutex: post sets it instead of blocking when the channel is full,
// and the tail loop re-syncs from the entry log before delivering anything
// further, so a slow tailer still observes every Seq exactly once.
type subscriber struct {
	ch     chan Entry
	conn   net.Conn
	gapped bool
}

// Server is a bulletin-board service instance.
type Server struct {
	ln    net.Listener
	meter *comm.Meter

	mu        sync.Mutex
	entries   []Entry
	subs      map[*subscriber]struct{}
	conns     map[net.Conn]struct{}
	observers []func(Entry)
	closed    bool

	// Telemetry instruments, nil (no-op, zero cost) until Instrument is
	// called. Time is only read when the corresponding histogram is set.
	postCount *telemetry.Counter   // transport.posts
	postBytes *telemetry.Histogram // transport.post_bytes
	postNS    *telemetry.Histogram // transport.post_ns
	tailNS    *telemetry.Histogram // transport.tail_write_ns
	resyncs   *telemetry.Counter   // transport.tail_resyncs
	tailLag   *telemetry.Gauge     // transport.tail_lag_max
	reaps     *telemetry.Counter   // transport.conn_reaps
	rejects   *telemetry.Counter   // transport.post_rejects

	wg sync.WaitGroup
}

// Instrument registers the server's transport metrics on reg and starts
// recording:
//
//	transport.posts         counter    accepted post requests
//	transport.post_bytes    histogram  measured posting sizes
//	transport.post_ns       histogram  post handling latency
//	transport.post_rejects  counter    rejected posts (size mismatch, malformed)
//	transport.tail_write_ns histogram  per-entry tail delivery latency
//	transport.tail_resyncs  counter    gapped-subscription log re-syncs
//	transport.tail_lag_max  gauge      largest backlog a re-sync replayed
//	transport.conn_reaps    counter    dead tail connections reaped
//
// Call it before the server takes traffic; a nil registry leaves the
// server uninstrumented at zero cost.
func (s *Server) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.postCount = reg.Counter("transport.posts")
	s.postBytes = reg.Histogram("transport.post_bytes", telemetry.SizeBuckets)
	s.postNS = reg.Histogram("transport.post_ns", telemetry.DurationBuckets)
	s.tailNS = reg.Histogram("transport.tail_write_ns", telemetry.DurationBuckets)
	s.resyncs = reg.Counter("transport.tail_resyncs")
	s.tailLag = reg.Gauge("transport.tail_lag_max")
	s.reaps = reg.Counter("transport.conn_reaps")
	s.rejects = reg.Counter("transport.post_rejects")
}

// Serve starts a server on the listener and returns immediately; Close
// shuts it down and waits for the connection handlers.
func Serve(ln net.Listener) *Server {
	s := &Server{
		ln:    ln,
		meter: &comm.Meter{},
		subs:  map[*subscriber]struct{}{},
		conns: map[net.Conn]struct{}{},
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				_ = conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Len returns the number of stored entries.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Entries returns a snapshot of the stored entries from sequence `since`.
func (s *Server) Entries(since int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if since < 0 {
		since = 0
	}
	if since >= len(s.entries) {
		return nil
	}
	out := make([]Entry, len(s.entries)-since)
	copy(out, s.entries[since:])
	return out
}

// Report returns the byte accounting of everything posted so far — every
// size in it was measured from real payload bytes.
func (s *Server) Report() comm.Report { return s.meter.Report() }

// Observe registers a callback invoked synchronously after every accepted
// post — the hook an in-server monitor attaches to (boardd's /progress).
// Callbacks must be fast and must not post back to the server.
func (s *Server) Observe(fn func(Entry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observers = append(s.observers, fn)
}

// Close stops accepting connections, terminates tailers and waits for all
// handlers to exit.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.closed = true
	for sub := range s.subs {
		close(sub.ch)
		// Unblock a tail loop stuck writing to a stalled client.
		_ = sub.conn.Close()
	}
	s.subs = map[*subscriber]struct{}{}
	// Unblock handlers parked reading the next frame from idle posters.
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		var hdr [2]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		if hdr[0] != wire.Version {
			s.writeErr(bw, fmt.Sprintf("unsupported wire version %d", hdr[0]))
			return
		}
		switch hdr[1] {
		case opPost:
			req, err := readPostRequest(br)
			if err != nil {
				// The stream is not trustworthy past a malformed frame.
				s.rejects.Inc()
				s.writeErr(bw, err.Error())
				return
			}
			seq, err := s.post(req)
			if err != nil {
				s.rejects.Inc()
				if !s.writeErr(bw, err.Error()) {
					return
				}
				continue
			}
			if !s.writeOK(bw, seq) {
				return
			}
		case opTail:
			since, _, err := wire.ReadUint32(br)
			if err != nil {
				return
			}
			s.tail(conn, bw, int(since))
			return // tail owns the connection until shutdown
		case opDump:
			since, _, err := wire.ReadUint32(br)
			if err != nil {
				return
			}
			if !s.dump(bw, int(since)) {
				return
			}
		default:
			s.writeErr(bw, fmt.Sprintf("unknown op %d", hdr[1]))
			return
		}
	}
}

// postRequest is a decoded post frame.
type postRequest struct {
	from, phase, category string
	trace                 TraceContext
	claimed               int
	payload               []byte
}

func readPostRequest(br *bufio.Reader) (postRequest, error) {
	var req postRequest
	var err error
	if req.from, _, err = wire.ReadString8(br); err != nil {
		return req, fmt.Errorf("reading poster: %w", err)
	}
	if req.phase, _, err = wire.ReadString8(br); err != nil {
		return req, fmt.Errorf("reading phase: %w", err)
	}
	if req.category, _, err = wire.ReadString8(br); err != nil {
		return req, fmt.Errorf("reading category: %w", err)
	}
	if _, err = req.trace.ReadFrom(br); err != nil {
		return req, fmt.Errorf("reading trace context: %w", err)
	}
	claimed, _, err := wire.ReadUint32(br)
	if err != nil {
		return req, fmt.Errorf("reading claimed size: %w", err)
	}
	req.claimed = int(claimed)
	if req.payload, _, err = wire.ReadBytes32(br); err != nil {
		return req, fmt.Errorf("reading payload: %w", err)
	}
	return req, nil
}

// dump writes a one-shot snapshot response: ver | u32 count | Entry×count.
func (s *Server) dump(bw *bufio.Writer, since int) bool {
	entries := s.Entries(since)
	hdr := make([]byte, 0, 5)
	hdr = append(hdr, wire.Version)
	hdr = wire.AppendUint32(hdr, uint32(len(entries)))
	if _, err := bw.Write(hdr); err != nil {
		return false
	}
	for _, e := range entries {
		if _, err := e.WriteTo(bw); err != nil {
			return false
		}
	}
	return bw.Flush() == nil
}

func (s *Server) writeOK(bw *bufio.Writer, seq int) bool {
	buf := make([]byte, 0, 6)
	buf = append(buf, wire.Version, statusOK)
	buf = wire.AppendUint32(buf, uint32(seq))
	if _, err := bw.Write(buf); err != nil {
		return false
	}
	return bw.Flush() == nil
}

func (s *Server) writeErr(bw *bufio.Writer, msg string) bool {
	buf := make([]byte, 0, 6+len(msg))
	buf = append(buf, wire.Version, statusErr)
	buf = wire.AppendBytes32(buf, []byte(msg))
	if _, err := bw.Write(buf); err != nil {
		return false
	}
	return bw.Flush() == nil
}

func (s *Server) post(req postRequest) (int, error) {
	if req.from == "" {
		return 0, errors.New("missing poster")
	}
	// The measured encoded length is authoritative; a disagreeing claim is
	// a protocol violation, not a rounding error.
	if req.claimed != len(req.payload) {
		return 0, fmt.Errorf("claimed size %d disagrees with measured payload size %d",
			req.claimed, len(req.payload))
	}
	var start time.Time
	if s.postNS != nil {
		start = time.Now()
	}
	size := len(req.payload)
	s.meter.Add(comm.Phase(req.phase), comm.Category(req.category), size)
	s.mu.Lock()
	// The server's receive clock is the shared timeline every poster's
	// trace aligns against; the client-stamped RecvUS (if any) is
	// overwritten, never trusted. Stamping under the append lock keeps
	// receive times monotone with sequence numbers.
	req.trace.RecvUS = time.Now().UnixMicro()
	e := Entry{
		Seq:      len(s.entries),
		From:     req.from,
		Phase:    req.phase,
		Category: req.category,
		Trace:    req.trace,
		Size:     size,
		Payload:  req.payload,
	}
	s.entries = append(s.entries, e)
	for sub := range s.subs {
		select {
		case sub.ch <- e:
		default:
			// Slow tailer: never block the board, but never silently lose
			// the entry either — mark the subscription gapped so its tail
			// loop re-syncs from the entry log before delivering more.
			sub.gapped = true
		}
	}
	observers := s.observers
	s.mu.Unlock()
	for _, fn := range observers {
		fn(e)
	}
	s.postCount.Inc()
	s.postBytes.Observe(float64(size))
	if s.postNS != nil {
		s.postNS.Observe(float64(time.Since(start)))
	}
	return e.Seq, nil
}

func (s *Server) tail(conn net.Conn, bw *bufio.Writer, since int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if since < 0 {
		since = 0
	}
	next := since // next sequence number owed to this tailer
	backlog := make([]Entry, 0)
	if since < len(s.entries) {
		backlog = append(backlog, s.entries[since:]...)
	}
	sub := &subscriber{ch: make(chan Entry, tailBuffer), conn: conn}
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sub)
		s.mu.Unlock()
	}()
	// Watch for the client going away. Without this, a tail loop with no
	// incoming posts would block on the subscription channel forever,
	// pinning the handler goroutine and the connection until server
	// shutdown. The tailer never sends after its initial request, so any
	// read completing means the connection is dead.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				s.mu.Lock()
				if _, ok := s.subs[sub]; ok {
					delete(s.subs, sub)
					close(sub.ch)
					s.reaps.Inc()
				}
				s.mu.Unlock()
				return
			}
		}
	}()
	// send delivers e unless it was already delivered via a re-sync
	// (entries can arrive both on the live channel and in a re-sync
	// batch; Seq ordering dedupes them).
	send := func(e Entry) bool {
		if e.Seq < next {
			return true
		}
		var start time.Time
		if s.tailNS != nil {
			start = time.Now()
		}
		if _, err := e.WriteTo(bw); err != nil {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		if s.tailNS != nil {
			s.tailNS.Observe(float64(time.Since(start)))
		}
		next = e.Seq + 1
		return true
	}
	for _, e := range backlog {
		if !send(e) {
			return
		}
	}
	for e := range sub.ch {
		// If post ever found the channel full it set gapped: re-read the
		// authoritative log from `next` so the client still sees every
		// entry exactly once, in order. A drop implies the channel was
		// full, so there is always a later receive to reach this check.
		s.mu.Lock()
		var resync []Entry
		if sub.gapped || e.Seq > next {
			resync = append(resync, s.entries[next:]...)
			sub.gapped = false
			s.resyncs.Inc()
			s.tailLag.Max(int64(len(resync)))
		}
		s.mu.Unlock()
		for _, re := range resync {
			if !send(re) {
				return
			}
		}
		if !send(e) {
			return
		}
	}
}

// Client posts entries to a remote board.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a board server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing board %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Post publishes one entry carrying the message's binary encoding and
// returns its assigned sequence number. The claimed size the frame carries
// is len(payload); the server re-measures and rejects any disagreement.
// The trace context carries only the poster's send time; use PostCtx to
// attribute the post to a process and span.
func (c *Client) Post(from string, phase comm.Phase, cat comm.Category, payload []byte) (int, error) {
	return c.PostCtx(from, phase, cat, payload, TraceContext{PostUS: time.Now().UnixMicro()})
}

// PostCtx is Post with an explicit trace context — the poster's process
// name, open span and send time travel with the entry; the server
// overwrites RecvUS with its own receive clock.
func (c *Client) PostCtx(from string, phase comm.Phase, cat comm.Category, payload []byte, tc TraceContext) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]byte, 0, 2+1+len(from)+1+len(phase)+1+len(cat)+tc.EncodedSize()+8+len(payload))
	buf = append(buf, wire.Version, opPost)
	buf = wire.AppendString8(buf, from)
	buf = wire.AppendString8(buf, string(phase))
	buf = wire.AppendString8(buf, string(cat))
	buf = tc.appendTo(buf)
	buf = wire.AppendUint32(buf, uint32(len(payload)))
	buf = wire.AppendBytes32(buf, payload)
	//yosolint:blocking c.mu serializes the request/response pair on the single connection; blocking under it is the framing protocol
	if _, err := c.bw.Write(buf); err != nil {
		return 0, fmt.Errorf("transport: posting: %w", err)
	}
	//yosolint:blocking same request/response critical section as the write above
	if err := c.bw.Flush(); err != nil {
		return 0, fmt.Errorf("transport: posting: %w", err)
	}
	//yosolint:blocking the response read must stay inside the critical section or replies interleave across posters
	return c.readPostResponse()
}

func (c *Client) readPostResponse() (int, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, fmt.Errorf("transport: reading post response: %w", err)
	}
	if hdr[0] != wire.Version {
		return 0, fmt.Errorf("transport: post response version %d, want %d", hdr[0], wire.Version)
	}
	switch hdr[1] {
	case statusOK:
		seq, _, err := wire.ReadUint32(c.br)
		if err != nil {
			return 0, fmt.Errorf("transport: reading post response: %w", err)
		}
		return int(seq), nil
	case statusErr:
		msg, _, err := wire.ReadBytes32(c.br)
		if err != nil {
			return 0, fmt.Errorf("transport: reading post error: %w", err)
		}
		return 0, fmt.Errorf("transport: board rejected post: %s", msg)
	default:
		return 0, fmt.Errorf("transport: post response status %d", hdr[1])
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Fetch dials addr and returns a one-shot snapshot of the board's entries
// from sequence `since` — the dump counterpart of the streaming Tail, used
// by trace merging and monitor snapshots.
func Fetch(addr string, since int) ([]Entry, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing board %s: %w", addr, err)
	}
	defer conn.Close()
	if since < 0 {
		since = 0
	}
	req := make([]byte, 0, 6)
	req = append(req, wire.Version, opDump)
	req = wire.AppendUint32(req, uint32(since))
	if _, err := conn.Write(req); err != nil {
		return nil, fmt.Errorf("transport: requesting dump: %w", err)
	}
	br := bufio.NewReader(conn)
	var ver [1]byte
	if _, err := io.ReadFull(br, ver[:]); err != nil {
		return nil, fmt.Errorf("transport: reading dump response: %w", err)
	}
	if ver[0] != wire.Version {
		return nil, fmt.Errorf("transport: dump response version %d, want %d", ver[0], wire.Version)
	}
	count, _, err := wire.ReadUint32(br)
	if err != nil {
		return nil, fmt.Errorf("transport: reading dump count: %w", err)
	}
	if count > wire.MaxLen {
		return nil, fmt.Errorf("%w: dump count %d exceeds limit", wire.ErrMalformed, count)
	}
	entries := make([]Entry, 0, count)
	for i := 0; i < int(count); i++ {
		var e Entry
		if _, err := e.ReadFrom(br); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("transport: reading dump entry %d/%d: %w", i, count, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Tail opens a streaming subscription from sequence `since`, delivering
// entries on the returned channel until the connection or server closes.
// The channel closes when the stream ends; the closer then reports how it
// ended: nil after a clean server close (or a voluntary stop), the
// terminal stream error after an abnormal one (a mid-frame disconnect
// surfaces as io.ErrUnexpectedEOF). The closer blocks until the stream
// goroutine has finished and may be called more than once.
func Tail(addr string, since int) (<-chan Entry, func() error, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: dialing board %s: %w", addr, err)
	}
	if since < 0 {
		since = 0
	}
	req := make([]byte, 0, 6)
	req = append(req, wire.Version, opTail)
	req = wire.AppendUint32(req, uint32(since))
	if _, err := conn.Write(req); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("transport: starting tail: %w", err)
	}
	out := make(chan Entry, 64)
	done := make(chan struct{})
	readerDone := make(chan struct{})
	var once sync.Once
	var termErr error // written once by the reader, read after readerDone
	stop := func() error {
		once.Do(func() {
			close(done)
			_ = conn.Close()
		})
		<-readerDone
		return termErr
	}
	go func() {
		defer close(readerDone)
		defer close(out)
		br := bufio.NewReader(conn)
		for {
			var e Entry
			if _, err := e.ReadFrom(br); err != nil {
				select {
				case <-done:
					// Voluntary stop: the consumer closed the connection
					// under the reader; not a stream failure.
				default:
					if err != io.EOF {
						// Clean server close is io.EOF at a frame
						// boundary; anything else is abnormal.
						termErr = err
					}
				}
				return
			}
			select {
			case out <- e:
			case <-done:
				// The consumer stopped draining and called the closer:
				// exit instead of blocking on the send forever (which
				// would leak this goroutine and pin the connection).
				return
			}
		}
	}()
	return out, stop, nil
}

// Mirror forwards every posting of an in-process board — real encoded
// payload bytes included — to a remote server as it happens. Forwarding is
// synchronous with the posting observer, so when the mirrored run
// finishes, the server's measured report is complete. The local board
// stays authoritative for the run itself: a remote failure never stalls
// the protocol, but it is counted (and logged once) rather than silently
// swallowed.
type Mirror struct {
	client *Client

	errs    atomic.Int64
	logOnce sync.Once

	errCount *telemetry.Counter // transport.mirror_post_errors
}

// AttachMirror dials addr and subscribes the mirror to the board. Call
// Instrument before the board takes traffic to expose the error counter.
func AttachMirror(board *Board, addr string) (*Mirror, error) {
	client, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	m := &Mirror{client: client}
	board.Observe(func(p Posting) {
		// Forward the local board's trace stamp so the remote entry keeps
		// the poster's process, span and send time; the server replaces
		// RecvUS with its own clock.
		if _, err := m.client.PostCtx(p.From, p.Phase, p.Category, p.Bytes, p.Trace); err != nil {
			m.errs.Add(1)
			m.errCount.Inc()
			m.logOnce.Do(func() {
				log.Printf("transport: mirror post to remote board failed (further failures counted, not logged): %v", err)
			})
		}
	})
	return m, nil
}

// Instrument registers the mirror's transport.mirror_post_errors counter
// on reg; a nil registry is a no-op.
func (m *Mirror) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.errCount = reg.Counter("transport.mirror_post_errors")
}

// Errors returns how many forwarded posts have failed.
func (m *Mirror) Errors() int64 { return m.errs.Load() }

// Close releases the mirror's connection. Postings observed after Close
// count as forwarding failures.
func (m *Mirror) Close() error { return m.client.Close() }
