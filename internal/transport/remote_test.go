package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"yosompc/internal/comm"
	"yosompc/internal/telemetry"
	"yosompc/internal/wire"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln)
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestRemotePostAndLen(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seq, err := c.Post("off1/3", comm.PhaseOffline, comm.CatBeaver, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 {
		t.Errorf("first seq = %d", seq)
	}
	seq, err = c.Post("off1/4", comm.PhaseOffline, comm.CatBeaver, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || s.Len() != 2 {
		t.Errorf("seq=%d len=%d", seq, s.Len())
	}
	rep := s.Report()
	if rep.Total != 1024 || rep.ByCat[comm.PhaseOffline][comm.CatBeaver] != 1024 {
		t.Errorf("report = %+v", rep)
	}
	// The stored entry carries the payload bytes, and Size is measured.
	es := s.Entries(0)
	if len(es) != 2 || es[0].Size != 512 || len(es[0].Payload) != 512 {
		t.Errorf("entries = %+v", es)
	}
}

// rawPostFrame builds a post frame with an arbitrary claimed size — the
// client API always claims len(payload), so lying requires a raw frame.
func rawPostFrame(from, phase, cat string, claimed int, payload []byte) []byte {
	buf := []byte{wire.Version, 0x01}
	buf = wire.AppendString8(buf, from)
	buf = wire.AppendString8(buf, phase)
	buf = wire.AppendString8(buf, cat)
	tc, _ := TraceContext{}.MarshalBinary()
	buf = append(buf, tc...)
	buf = wire.AppendUint32(buf, uint32(claimed))
	return wire.AppendBytes32(buf, payload)
}

func readRawResponse(t *testing.T, conn net.Conn) (status byte, rest []byte) {
	t.Helper()
	hdr := make([]byte, 2)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		t.Fatalf("reading response header: %v", err)
	}
	if hdr[0] != wire.Version {
		t.Fatalf("response version = %d", hdr[0])
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("reading response body: %v", err)
	}
	if hdr[1] == statusErr {
		// The u32 is the length of the rejection message; drain it so the
		// next frame's response starts at a frame boundary.
		n := int(buf[0])<<24 | int(buf[1])<<16 | int(buf[2])<<8 | int(buf[3])
		msg := make([]byte, n)
		if _, err := io.ReadFull(conn, msg); err != nil {
			t.Fatalf("reading rejection message: %v", err)
		}
		return hdr[1], msg
	}
	return hdr[1], buf
}

func TestRemotePostValidation(t *testing.T) {
	s := startServer(t)
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Post("", comm.PhaseSetup, comm.CatCRS, []byte{1}); err == nil {
		t.Error("accepted empty poster")
	}
	// The connection must survive rejected posts.
	if _, err := c.Post("a", comm.PhaseSetup, comm.CatCRS, []byte{1}); err != nil {
		t.Errorf("post after rejection failed: %v", err)
	}
	if got := reg.Snapshot().Counters["transport.post_rejects"]; got != 1 {
		t.Errorf("transport.post_rejects = %d, want 1", got)
	}
}

// The server meters the measured payload length and rejects any post whose
// claimed size disagrees — a poster cannot skew the byte accounting.
func TestRemotePostClaimedSizeMismatchRejected(t *testing.T) {
	s := startServer(t)
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(rawPostFrame("liar", "offline", "beaver", 1<<20, []byte{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	status, _ := readRawResponse(t, conn)
	if status != statusErr {
		t.Fatalf("lying post got status %d, want rejection", status)
	}
	if s.Len() != 0 || s.Report().Total != 0 {
		t.Errorf("rejected post was stored: len=%d total=%d", s.Len(), s.Report().Total)
	}
	if got := reg.Snapshot().Counters["transport.post_rejects"]; got != 1 {
		t.Errorf("transport.post_rejects = %d, want 1", got)
	}
	// An honest frame on the same connection still goes through.
	if _, err := conn.Write(rawPostFrame("honest", "offline", "beaver", 3, []byte{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	status, seqBuf := readRawResponse(t, conn)
	if status != statusOK || seqBuf[3] != 0 {
		t.Errorf("honest post after rejection: status=%d seq bytes=%v", status, seqBuf)
	}
	if s.Report().Total != 3 {
		t.Errorf("measured total = %d, want 3", s.Report().Total)
	}
}

func TestRemoteTailBacklogAndLive(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Post("r", comm.PhaseOnline, comm.CatMu, make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	entries, stop, err := Tail(s.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// Backlog: seq 1 and 2.
	for want := 1; want <= 2; want++ {
		e := recvEntry(t, entries)
		if e.Seq != want {
			t.Errorf("backlog seq = %d, want %d", e.Seq, want)
		}
	}
	// Live: a new post arrives on the stream, bytes intact.
	live := []byte("live-payload")
	if _, err := c.Post("r", comm.PhaseOnline, comm.CatMu, live); err != nil {
		t.Fatal(err)
	}
	e := recvEntry(t, entries)
	if e.Seq != 3 || !bytes.Equal(e.Payload, live) {
		t.Errorf("live entry = %+v", e)
	}
}

func recvEntry(t *testing.T, ch <-chan Entry) Entry {
	t.Helper()
	select {
	case e, ok := <-ch:
		if !ok {
			t.Fatal("tail channel closed early")
		}
		return e
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for entry")
		return Entry{}
	}
}

func TestRemoteConcurrentPosters(t *testing.T) {
	s := startServer(t)
	const posters, each = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < each; i++ {
				if _, err := c.Post("w", comm.PhaseOffline, comm.CatLambda, []byte{0}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != posters*each {
		t.Errorf("len = %d, want %d", s.Len(), posters*each)
	}
	if s.Report().Postings != posters*each {
		t.Errorf("postings = %d", s.Report().Postings)
	}
}

func TestRemoteServerCloseTerminatesTail(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln)
	entries, stop, err := Tail(s.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for range entries {
		}
		close(done)
	}()
	// Wait for the subscription to register: closing the server while the
	// tail request is still in flight is an abnormal close (TCP reset), not
	// the clean shutdown under test.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.subs)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tail subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tail did not terminate on server close")
	}
	// A clean server close at a frame boundary is not an error.
	if err := stop(); err != nil {
		t.Errorf("stop after clean server close = %v, want nil", err)
	}
}

// An abnormal stream end — the server dying mid-frame — must surface
// through the closer instead of being dropped.
func TestTailSurfacesTerminalError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Consume the tail request, then send a truncated Entry frame and
		// hang up mid-frame.
		buf := make([]byte, 6)
		_, _ = io.ReadFull(conn, buf)
		e := Entry{Seq: 0, From: "r", Phase: "online", Category: "mu", Size: 4, Payload: []byte{1, 2, 3, 4}}
		enc, _ := e.MarshalBinary()
		_, _ = conn.Write(enc[:len(enc)-2])
		conn.Close()
	}()
	entries, stop, err := Tail(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for range entries {
	}
	if err := stop(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("stop after mid-frame disconnect = %v, want io.ErrUnexpectedEOF", err)
	}
	// stop is idempotent and keeps reporting the same terminal error.
	if err := stop(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("second stop = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestAttachMirror(t *testing.T) {
	s := startServer(t)
	meter := &comm.Meter{}
	board := NewBoard(meter)
	mirror, err := AttachMirror(board, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.Close()
	board.Post("off1/1", comm.PhaseOffline, comm.CatBeaver, make([]byte, 100), "payload")
	board.Post("off1/2", comm.PhaseOffline, comm.CatBeaver, make([]byte, 200), 42)
	// Local board is authoritative.
	if board.Len() != 2 || meter.Report().Total != 300 {
		t.Errorf("local: len=%d total=%d", board.Len(), meter.Report().Total)
	}
	// Remote mirror converges (posts are synchronous acks) and its report —
	// measured from the shipped bytes — matches the in-process meter.
	if s.Len() != 2 || s.Report().Total != 300 {
		t.Errorf("remote: len=%d total=%d", s.Len(), s.Report().Total)
	}
	if mirror.Errors() != 0 {
		t.Errorf("mirror errors = %d", mirror.Errors())
	}
}

// A dead remote must not stall the run: failures are counted on the mirror
// and in telemetry, never swallowed silently.
func TestMirrorCountsForwardingFailures(t *testing.T) {
	s := startServer(t)
	board := NewBoard(nil)
	mirror, err := AttachMirror(board, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	mirror.Instrument(reg)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_ = mirror.Close()
	board.Post("r/1", comm.PhaseOnline, comm.CatMu, []byte{1, 2}, nil)
	board.Post("r/2", comm.PhaseOnline, comm.CatMu, []byte{3}, nil)
	if got := mirror.Errors(); got != 2 {
		t.Errorf("mirror.Errors() = %d, want 2", got)
	}
	if got := reg.Snapshot().Counters["transport.mirror_post_errors"]; got != 2 {
		t.Errorf("transport.mirror_post_errors = %d, want 2", got)
	}
	// The local board kept both postings regardless.
	if board.Len() != 2 {
		t.Errorf("local board len = %d", board.Len())
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
	if _, _, err := Tail("127.0.0.1:1", 0); err == nil {
		t.Error("tail to closed port succeeded")
	}
}
