package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"yosompc/internal/comm"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln)
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestRemotePostAndLen(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seq, err := c.Post("off1/3", comm.PhaseOffline, comm.CatBeaver, 512, "ctBundle")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 {
		t.Errorf("first seq = %d", seq)
	}
	seq, err = c.Post("off1/4", comm.PhaseOffline, comm.CatBeaver, 512, "")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || s.Len() != 2 {
		t.Errorf("seq=%d len=%d", seq, s.Len())
	}
	rep := s.Report()
	if rep.Total != 1024 || rep.ByCat[comm.PhaseOffline][comm.CatBeaver] != 1024 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRemotePostValidation(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Post("", comm.PhaseSetup, comm.CatCRS, 1, ""); err == nil {
		t.Error("accepted empty poster")
	}
	if _, err := c.Post("a", comm.PhaseSetup, comm.CatCRS, -5, ""); err == nil {
		t.Error("accepted negative size")
	}
	// The connection must survive rejected posts.
	if _, err := c.Post("a", comm.PhaseSetup, comm.CatCRS, 1, ""); err != nil {
		t.Errorf("post after rejection failed: %v", err)
	}
}

func TestRemoteTailBacklogAndLive(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Post("r", comm.PhaseOnline, comm.CatMu, 8, ""); err != nil {
			t.Fatal(err)
		}
	}
	entries, stop, err := Tail(s.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// Backlog: seq 1 and 2.
	for want := 1; want <= 2; want++ {
		e := recvEntry(t, entries)
		if e.Seq != want {
			t.Errorf("backlog seq = %d, want %d", e.Seq, want)
		}
	}
	// Live: a new post arrives on the stream.
	if _, err := c.Post("r", comm.PhaseOnline, comm.CatMu, 8, "live"); err != nil {
		t.Fatal(err)
	}
	e := recvEntry(t, entries)
	if e.Seq != 3 || e.Summary != "live" {
		t.Errorf("live entry = %+v", e)
	}
}

func recvEntry(t *testing.T, ch <-chan Entry) Entry {
	t.Helper()
	select {
	case e, ok := <-ch:
		if !ok {
			t.Fatal("tail channel closed early")
		}
		return e
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for entry")
		return Entry{}
	}
}

func TestRemoteConcurrentPosters(t *testing.T) {
	s := startServer(t)
	const posters, each = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < each; i++ {
				if _, err := c.Post("w", comm.PhaseOffline, comm.CatLambda, 1, ""); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != posters*each {
		t.Errorf("len = %d, want %d", s.Len(), posters*each)
	}
	if s.Report().Postings != posters*each {
		t.Errorf("postings = %d", s.Report().Postings)
	}
}

func TestRemoteServerCloseTerminatesTail(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := Serve(ln)
	entries, stop, err := Tail(s.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	done := make(chan struct{})
	go func() {
		for range entries {
		}
		close(done)
	}()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tail did not terminate on server close")
	}
}

func TestAttachMirror(t *testing.T) {
	s := startServer(t)
	meter := &comm.Meter{}
	board := NewBoard(meter)
	closeMirror, err := AttachMirror(board, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer closeMirror()
	board.Post("off1/1", comm.PhaseOffline, comm.CatBeaver, 100, "payload")
	board.Post("off1/2", comm.PhaseOffline, comm.CatBeaver, 200, 42)
	// Local board is authoritative.
	if board.Len() != 2 || meter.Report().Total != 300 {
		t.Errorf("local: len=%d total=%d", board.Len(), meter.Report().Total)
	}
	// Remote mirror converges (posts are synchronous acks).
	if s.Len() != 2 || s.Report().Total != 300 {
		t.Errorf("remote: len=%d total=%d", s.Len(), s.Report().Total)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
	if _, _, err := Tail("127.0.0.1:1", 0); err == nil {
		t.Error("tail to closed port succeeded")
	}
}
