// Package field implements arithmetic in the prime field F_p with
// p = 2^61 - 1 (the eighth Mersenne prime).
//
// The Mersenne structure admits fast reduction without division: for any
// 122-bit product hi·2^64 + lo, the value is congruent to
// (hi·8 + lo>>61) + (lo & p) modulo p, because 2^61 ≡ 1 (mod p).
//
// All values of type Element are kept in canonical form, i.e. in the range
// [0, p). The zero value of Element is the field's additive identity and is
// ready to use.
package field

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// Modulus is the field characteristic p = 2^61 - 1.
const Modulus uint64 = (1 << 61) - 1

// ElementSize is the serialized size of an Element in bytes.
const ElementSize = 8

// Element is an element of F_p in canonical form [0, p).
type Element uint64

// Common small constants.
const (
	Zero Element = 0
	One  Element = 1
)

// ErrNotInvertible is returned when asked for the inverse of zero.
var ErrNotInvertible = errors.New("field: zero has no multiplicative inverse")

// New reduces an arbitrary uint64 into the field.
func New(v uint64) Element {
	// v < 2^64 = 8·2^61, so at most two folding rounds are needed.
	v = (v >> 61) + (v & uint64(Modulus))
	if v >= Modulus {
		v -= Modulus
	}
	return Element(v)
}

// NewInt64 reduces a signed integer into the field.
func NewInt64(v int64) Element {
	if v >= 0 {
		return New(uint64(v))
	}
	m := New(uint64(-v))
	return m.Neg()
}

// FromBig reduces a big integer into the field.
func FromBig(v *big.Int) Element {
	var m big.Int
	m.Mod(v, modulusBig)
	return Element(m.Uint64())
}

var modulusBig = new(big.Int).SetUint64(Modulus)

// ModulusBig returns the field characteristic as a big.Int.
// The caller must not mutate the returned value.
func ModulusBig() *big.Int { return modulusBig }

// Big returns the element as a big.Int.
func (e Element) Big() *big.Int { return new(big.Int).SetUint64(uint64(e)) }

// Uint64 returns the canonical representative in [0, p).
func (e Element) Uint64() uint64 { return uint64(e) }

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e == 0 }

// Add returns e + o mod p.
func (e Element) Add(o Element) Element {
	s := uint64(e) + uint64(o) // < 2p < 2^62, no overflow
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Sub returns e - o mod p.
func (e Element) Sub(o Element) Element {
	d := uint64(e) - uint64(o)
	if uint64(e) < uint64(o) {
		d += Modulus
	}
	return Element(d)
}

// Neg returns -e mod p.
func (e Element) Neg() Element {
	if e == 0 {
		return 0
	}
	return Element(Modulus - uint64(e))
}

// Mul returns e · o mod p using Mersenne folding.
func (e Element) Mul(o Element) Element {
	hi, lo := bits.Mul64(uint64(e), uint64(o))
	// e·o = hi·2^64 + lo = hi·8·2^61 + lo ≡ hi·8 + (lo>>61) + (lo & p).
	r := hi<<3 | lo>>61 // < 2^61 since hi < 2^58 for canonical inputs
	s := r + (lo & uint64(Modulus))
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Square returns e² mod p.
func (e Element) Square() Element { return e.Mul(e) }

// Double returns 2e mod p.
func (e Element) Double() Element { return e.Add(e) }

// Pow returns e^exp mod p by square-and-multiply.
func (e Element) Pow(exp uint64) Element {
	result := One
	base := e
	for exp > 0 {
		if exp&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Square()
		exp >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of e, or ErrNotInvertible for zero.
func (e Element) Inv() (Element, error) {
	if e == 0 {
		return 0, ErrNotInvertible
	}
	// Fermat: e^(p-2) mod p.
	return e.Pow(Modulus - 2), nil
}

// MustInv returns the inverse of e and panics on zero. It is intended for
// call sites where non-zeroness is a structural invariant (e.g. distinct
// evaluation points), not for data-dependent values.
func (e Element) MustInv() Element {
	inv, err := e.Inv()
	if err != nil {
		panic(err)
	}
	return inv
}

// Div returns e / o mod p, or ErrNotInvertible when o is zero.
func (e Element) Div(o Element) (Element, error) {
	inv, err := o.Inv()
	if err != nil {
		return 0, err
	}
	return e.Mul(inv), nil
}

// Equal reports whether two elements are equal.
func (e Element) Equal(o Element) bool { return e == o }

// String implements fmt.Stringer.
func (e Element) String() string { return fmt.Sprintf("%d", uint64(e)) }

// Bytes returns the fixed-size big-endian encoding of e.
func (e Element) Bytes() [ElementSize]byte {
	var buf [ElementSize]byte
	binary.BigEndian.PutUint64(buf[:], uint64(e))
	return buf
}

// AppendBytes appends the fixed-size encoding of e to dst.
func (e Element) AppendBytes(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(e))
}

// FromBytes decodes an element from its fixed-size encoding. It rejects
// non-canonical encodings (values ≥ p).
func FromBytes(buf []byte) (Element, error) {
	if len(buf) < ElementSize {
		return 0, fmt.Errorf("field: short encoding: %d bytes", len(buf))
	}
	v := binary.BigEndian.Uint64(buf[:ElementSize])
	if v >= Modulus {
		return 0, fmt.Errorf("field: non-canonical encoding %d", v)
	}
	return Element(v), nil
}

// Random returns a uniformly random field element from crypto/rand.
func Random() (Element, error) {
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("field: sampling randomness: %w", err)
		}
		// Rejection-sample 61-bit values for exact uniformity.
		v := binary.BigEndian.Uint64(buf[:]) >> 3 // 61 bits
		if v < Modulus {
			return Element(v), nil
		}
	}
}

// MustRandom returns a uniformly random element and panics if the system
// randomness source fails (an unrecoverable environment error).
func MustRandom() Element {
	e, err := Random()
	if err != nil {
		panic(err)
	}
	return e
}

// RandomVec returns a vector of n uniformly random field elements.
func RandomVec(n int) ([]Element, error) {
	out := make([]Element, n)
	for i := range out {
		e, err := Random()
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// MustRandomVec is RandomVec panicking on randomness failure. The caller
// owns the returned buffer and is responsible for wiping it (Zeroize)
// once the secret material it carries is no longer needed.
func MustRandomVec(n int) []Element {
	v, err := RandomVec(n)
	if err != nil {
		panic(err)
	}
	return v //yosolint:owner constructor: the caller owns the sampled vector and wipes it after use
}

// BatchInv inverts every element of xs with a single field inversion
// (Montgomery's trick): prefix products, one Inv, then back-substitution.
// It returns ErrNotInvertible if any input is zero. For the Lagrange
// machinery this turns O(m) Fermat exponentiations into one.
func BatchInv(xs []Element) ([]Element, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	prefix := make([]Element, len(xs))
	acc := One
	for i, x := range xs {
		if x.IsZero() {
			return nil, ErrNotInvertible
		}
		prefix[i] = acc
		acc = acc.Mul(x)
	}
	inv, err := acc.Inv()
	if err != nil {
		return nil, err
	}
	out := make([]Element, len(xs))
	for i := len(xs) - 1; i >= 0; i-- {
		out[i] = inv.Mul(prefix[i])
		inv = inv.Mul(xs[i])
	}
	return out, nil
}
