package field

import "testing"

// FuzzFromBytes checks the decoder never panics and accepts exactly the
// canonical encodings.
func FuzzFromBytes(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := FromBytes(data)
		if err != nil {
			return
		}
		buf := e.Bytes()
		back, err := FromBytes(buf[:])
		if err != nil || back != e {
			t.Fatalf("canonical value failed round trip: %v %v", back, err)
		}
	})
}
