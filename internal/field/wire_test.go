package field

import (
	"bytes"
	"testing"
)

// TestVecEncodedSize pins the Vec size model: a 4-byte count plus 8
// canonical bytes per element, and agreement with the actual encoding.
func TestVecEncodedSize(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64} {
		v := make(Vec, n)
		for i := range v {
			v[i] = New(uint64(i) * 1048573)
		}
		want := 4 + n*ElementSize
		if got := v.EncodedSize(); got != want {
			t.Fatalf("Vec(%d).EncodedSize = %d, want %d", n, got, want)
		}
		enc, err := v.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != v.EncodedSize() {
			t.Fatalf("Vec(%d) encoded to %d bytes, EncodedSize says %d", n, len(enc), v.EncodedSize())
		}
	}
}

// FuzzVecRoundTrip feeds arbitrary bytes through the Vec decoders: any
// accepted input must re-encode to the identical bytes through both the
// buffer and stream codecs, and the size model must match.
func FuzzVecRoundTrip(f *testing.F) {
	if enc, err := (Vec{New(1), New(2), New(3)}).MarshalBinary(); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Vec
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		enc, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, enc)
		}
		if len(enc) != v.EncodedSize() {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), v.EncodedSize())
		}
		var sv Vec
		if _, err := sv.ReadFrom(bytes.NewReader(data)); err != nil {
			t.Fatalf("stream decoder rejected bytes the buffer decoder accepted: %v", err)
		}
		var out bytes.Buffer
		if _, err := sv.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("stream round trip changed bytes: %x -> %x", data, out.Bytes())
		}
	})
}
