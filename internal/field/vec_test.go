package field

import (
	"testing"
	"testing/quick"
)

func fromUints(vs []uint64) []Element {
	out := make([]Element, len(vs))
	for i, v := range vs {
		out[i] = New(v)
	}
	return out
}

func TestAddSubVec(t *testing.T) {
	f := func(as, bs []uint64) bool {
		n := len(as)
		if len(bs) < n {
			n = len(bs)
		}
		a, b := fromUints(as[:n]), fromUints(bs[:n])
		return EqualVec(SubVec(AddVec(a, b), b), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulVec(t *testing.T) {
	a := fromUints([]uint64{2, 3, 4})
	b := fromUints([]uint64{5, 6, 7})
	want := fromUints([]uint64{10, 18, 28})
	if got := MulVec(a, b); !EqualVec(got, want) {
		t.Errorf("MulVec = %v, want %v", got, want)
	}
}

func TestScalarMulVec(t *testing.T) {
	a := fromUints([]uint64{1, 2, 3})
	got := ScalarMulVec(Element(10), a)
	want := fromUints([]uint64{10, 20, 30})
	if !EqualVec(got, want) {
		t.Errorf("ScalarMulVec = %v, want %v", got, want)
	}
}

func TestNegVecSum(t *testing.T) {
	f := func(as []uint64) bool {
		a := fromUints(as)
		s := AddVec(a, NegVec(a))
		for _, v := range s {
			if v != Zero {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInnerProduct(t *testing.T) {
	a := fromUints([]uint64{1, 2, 3})
	b := fromUints([]uint64{4, 5, 6})
	if got := InnerProduct(a, b); got != Element(32) {
		t.Errorf("InnerProduct = %v, want 32", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum(fromUints([]uint64{1, 2, 3, 4})); got != Element(10) {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := Sum(nil); got != Zero {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestEqualVec(t *testing.T) {
	a := fromUints([]uint64{1, 2})
	if EqualVec(a, fromUints([]uint64{1})) {
		t.Error("EqualVec true on length mismatch")
	}
	if !EqualVec(a, CloneVec(a)) {
		t.Error("EqualVec false on clone")
	}
}

func TestCloneVecIndependent(t *testing.T) {
	a := fromUints([]uint64{1, 2, 3})
	c := CloneVec(a)
	c[0] = Element(99)
	if a[0] == Element(99) {
		t.Error("CloneVec aliases input")
	}
}

func TestVecSerializationRoundTrip(t *testing.T) {
	f := func(as []uint64) bool {
		a := fromUints(as)
		buf := AppendVecBytes(nil, a)
		b, err := VecFromBytes(buf, len(a))
		return err == nil && EqualVec(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecFromBytesShort(t *testing.T) {
	if _, err := VecFromBytes([]byte{1, 2, 3}, 1); err == nil {
		t.Error("VecFromBytes accepted short buffer")
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddVec did not panic on length mismatch")
		}
	}()
	AddVec(make([]Element, 2), make([]Element, 3))
}

func TestZeroize(t *testing.T) {
	v := MustRandomVec(64)
	Zeroize(v)
	for i, e := range v {
		if e != Zero {
			t.Fatalf("Zeroize left v[%d] = %v", i, e)
		}
	}
	Zeroize(nil) // must tolerate empty input
}

// BenchmarkZeroize bounds the cost the sharing hot path pays for wiping
// its scratch randomness: one pass over a d+1 = 513 element buffer (the
// n=1024 benchmark geometry) against the ~861µs the share evaluation
// itself takes — the wipe must stay noise.
func BenchmarkZeroize(b *testing.B) {
	v := MustRandomVec(513)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Zeroize(v)
	}
}
