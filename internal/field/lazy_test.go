package field

import (
	"testing"
	"testing/quick"
)

// boundaryElems are the values most likely to expose a folding bug: the
// extremes of the canonical range, the powers straddling the 61-bit fold
// boundary, and their neighbours.
var boundaryElems = []Element{
	0, 1, 2, 3,
	Element(Modulus - 1), Element(Modulus - 2), Element(Modulus - 3),
	Element(1 << 60), Element(1<<60 - 1), Element(1<<60 + 1),
	Element(1 << 59), Element(1<<31 - 1), Element(1 << 32),
}

// TestInnerProductLazyExhaustiveBoundary drives every pair of boundary
// values through every vector length around the 4-term fold window, in
// every position, and demands bit-identity with the canonical
// InnerProduct.
func TestInnerProductLazyExhaustiveBoundary(t *testing.T) {
	for _, x := range boundaryElems {
		for _, y := range boundaryElems {
			for n := 0; n <= 9; n++ {
				for pos := 0; pos < n; pos++ {
					a := make([]Element, n)
					b := make([]Element, n)
					for i := range a {
						// Fill the rest with the worst-case constant so the
						// accumulator runs as hot as possible.
						a[i], b[i] = Element(Modulus-1), Element(Modulus-1)
					}
					a[pos], b[pos] = x, y
					want := InnerProduct(a, b)
					if got := InnerProductLazy(a, b); got != want {
						t.Fatalf("InnerProductLazy(n=%d pos=%d x=%v y=%v) = %v, want %v",
							n, pos, x, y, got, want)
					}
				}
			}
		}
	}
}

// TestInnerProductLazyAllMax pins the absolute worst case for the lazy
// accumulator: long vectors of p−1 everywhere, across lengths spanning
// several fold windows plus every tail size.
func TestInnerProductLazyAllMax(t *testing.T) {
	for n := 0; n <= 67; n++ {
		a := make([]Element, n)
		for i := range a {
			a[i] = Element(Modulus - 1)
		}
		want := InnerProduct(a, a)
		if got := InnerProductLazy(a, a); got != want {
			t.Fatalf("all-max n=%d: lazy %v != canonical %v", n, got, want)
		}
	}
}

func TestInnerProductLazyQuick(t *testing.T) {
	f := func(raw []uint64) bool {
		a := make([]Element, len(raw))
		b := make([]Element, len(raw))
		for i, v := range raw {
			a[i] = New(v)
			b[i] = New(v*2718281828 + 314159)
		}
		return InnerProductLazy(a, b) == InnerProduct(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInnerProductLazyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InnerProductLazy accepted mismatched lengths")
		}
	}()
	InnerProductLazy(make([]Element, 2), make([]Element, 3))
}

func TestMatVecLazy(t *testing.T) {
	rows := [][]Element{
		{1, 2, 3},
		{Element(Modulus - 1), 0, 7},
	}
	v := []Element{5, 11, Element(Modulus - 2)}
	got := MatVecLazy(rows, v)
	if len(got) != 2 {
		t.Fatalf("MatVecLazy returned %d rows", len(got))
	}
	for i, row := range rows {
		if want := InnerProduct(row, v); got[i] != want {
			t.Errorf("row %d: %v, want %v", i, got[i], want)
		}
	}
}

func BenchmarkInnerProduct(b *testing.B) {
	a := MustRandomVec(1024)
	c := MustRandomVec(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkElem = InnerProduct(a, c)
	}
}

func BenchmarkInnerProductLazy(b *testing.B) {
	a := MustRandomVec(1024)
	c := MustRandomVec(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkElem = InnerProductLazy(a, c)
	}
}

var sinkElem Element
