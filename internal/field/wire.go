package field

import (
	"encoding"
	"fmt"
	"io"

	"yosompc/internal/wire"
)

// Vec is a batch of field elements with a self-describing binary codec —
// the unit of client-input and μ-opening traffic when it crosses a wire.
// Layout (big-endian):
//
//	u32 count | count × 8-byte canonical elements
//
// Inside protocol payloads whose batch width is fixed by the circuit layer,
// elements travel bare via AppendVecBytes/VecFromBytes instead.
type Vec []Element

// EncodedSize returns the exact encoded length in bytes.
func (v Vec) EncodedSize() int { return 4 + len(v)*ElementSize }

// MarshalBinary implements encoding.BinaryMarshaler.
func (v Vec) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, v.EncodedSize())
	out = wire.AppendUint32(out, uint32(len(v)))
	return AppendVecBytes(out, v), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The encoding must
// consume the whole buffer.
func (v *Vec) UnmarshalBinary(data []byte) error {
	n, rest, err := wire.Uint32(data)
	if err != nil {
		return err
	}
	if uint64(n)*ElementSize > wire.MaxLen {
		return fmt.Errorf("%w: vector count %d exceeds limit", wire.ErrMalformed, n)
	}
	if len(rest) != int(n)*ElementSize {
		return fmt.Errorf("%w: vector of %d elements needs %d bytes, have %d",
			wire.ErrMalformed, n, int(n)*ElementSize, len(rest))
	}
	out, err := VecFromBytes(rest, int(n))
	if err != nil {
		return err
	}
	*v = out
	return nil
}

// WriteTo implements io.WriterTo.
func (v Vec) WriteTo(w io.Writer) (int64, error) {
	return wire.WriteBinary(w, v)
}

// ReadFrom implements io.ReaderFrom.
func (v *Vec) ReadFrom(r io.Reader) (int64, error) {
	count, n, err := wire.ReadUint32(r)
	if err != nil {
		return int64(n), err
	}
	if uint64(count)*ElementSize > wire.MaxLen {
		return int64(n), fmt.Errorf("%w: vector count %d exceeds limit", wire.ErrMalformed, count)
	}
	buf := make([]byte, int(count)*ElementSize)
	m, err := io.ReadFull(r, buf)
	n += m
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return int64(n), err
	}
	out, err := VecFromBytes(buf, int(count))
	if err != nil {
		return int64(n), err
	}
	*v = out
	return int64(n), nil
}

var (
	_ encoding.BinaryMarshaler   = Vec(nil)
	_ encoding.BinaryUnmarshaler = (*Vec)(nil)
	_ io.WriterTo                = Vec(nil)
	_ io.ReaderFrom              = (*Vec)(nil)
)
