package field

import (
	"math/big"
	"testing"
	"testing/quick"
)

// quickElement adapts testing/quick's uint64 generation to canonical elements.
func quickElement(v uint64) Element { return New(v) }

func TestNewReduces(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{Modulus - 1, Modulus - 1},
		{Modulus, 0},
		{Modulus + 1, 1},
		{2 * Modulus, 0},
		{^uint64(0), (^uint64(0)) % Modulus},
	}
	for _, c := range cases {
		if got := New(c.in).Uint64(); got != c.want {
			t.Errorf("New(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNewInt64(t *testing.T) {
	if got := NewInt64(-1); got != Element(Modulus-1) {
		t.Errorf("NewInt64(-1) = %v, want p-1", got)
	}
	if got := NewInt64(5); got != Element(5) {
		t.Errorf("NewInt64(5) = %v", got)
	}
	if got := NewInt64(-5).Add(NewInt64(5)); got != Zero {
		t.Errorf("-5 + 5 = %v, want 0", got)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := quickElement(a), quickElement(b)
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := quickElement(a), quickElement(b)
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := quickElement(a), quickElement(b)
		return x.Mul(y) == y.Mul(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := quickElement(a), quickElement(b), quickElement(c)
		return x.Mul(y).Mul(z) == x.Mul(y.Mul(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := quickElement(a), quickElement(b), quickElement(c)
		return x.Mul(y.Add(z)) == x.Mul(y).Add(x.Mul(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBigInt(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := quickElement(a), quickElement(b)
		var want big.Int
		want.Mul(x.Big(), y.Big()).Mod(&want, modulusBig)
		return x.Mul(y).Uint64() == want.Uint64()
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMulEdgeCases(t *testing.T) {
	maxE := Element(Modulus - 1)
	// (p-1)² mod p = 1.
	if got := maxE.Mul(maxE); got != One {
		t.Errorf("(p-1)² = %v, want 1", got)
	}
	if got := maxE.Mul(Zero); got != Zero {
		t.Errorf("(p-1)·0 = %v, want 0", got)
	}
	if got := maxE.Mul(One); got != maxE {
		t.Errorf("(p-1)·1 = %v, want p-1", got)
	}
}

func TestNeg(t *testing.T) {
	f := func(a uint64) bool {
		x := quickElement(a)
		return x.Add(x.Neg()) == Zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Zero.Neg() != Zero {
		t.Error("-0 != 0")
	}
}

func TestInv(t *testing.T) {
	f := func(a uint64) bool {
		x := quickElement(a)
		if x == Zero {
			return true
		}
		inv, err := x.Inv()
		if err != nil {
			return false
		}
		return x.Mul(inv) == One
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInvZero(t *testing.T) {
	if _, err := Zero.Inv(); err != ErrNotInvertible {
		t.Errorf("Inv(0) error = %v, want ErrNotInvertible", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustInv(0) did not panic")
		}
	}()
	Zero.MustInv()
}

func TestDiv(t *testing.T) {
	x, y := Element(42), Element(7919)
	q, err := x.Div(y)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mul(y) != x {
		t.Errorf("(x/y)·y = %v, want %v", q.Mul(y), x)
	}
	if _, err := x.Div(Zero); err == nil {
		t.Error("Div by zero succeeded")
	}
}

func TestPow(t *testing.T) {
	x := Element(3)
	if got := x.Pow(0); got != One {
		t.Errorf("3^0 = %v", got)
	}
	if got := x.Pow(1); got != x {
		t.Errorf("3^1 = %v", got)
	}
	if got := x.Pow(5); got != Element(243) {
		t.Errorf("3^5 = %v, want 243", got)
	}
	// Fermat's little theorem: x^(p-1) = 1 for x != 0.
	if got := x.Pow(Modulus - 1); got != One {
		t.Errorf("3^(p-1) = %v, want 1", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		x := quickElement(a)
		buf := x.Bytes()
		y, err := FromBytes(buf[:])
		return err == nil && x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBytesRejectsNonCanonical(t *testing.T) {
	bad := Element(Modulus) // not canonical
	buf := bad.Bytes()
	if _, err := FromBytes(buf[:]); err == nil {
		t.Error("FromBytes accepted value == p")
	}
	if _, err := FromBytes([]byte{1, 2}); err == nil {
		t.Error("FromBytes accepted short buffer")
	}
}

func TestFromBig(t *testing.T) {
	var v big.Int
	v.SetUint64(Modulus)
	v.Add(&v, big.NewInt(7))
	if got := FromBig(&v); got != Element(7) {
		t.Errorf("FromBig(p+7) = %v, want 7", got)
	}
	neg := big.NewInt(-1)
	if got := FromBig(neg); got != Element(Modulus-1) {
		t.Errorf("FromBig(-1) = %v, want p-1", got)
	}
}

func TestRandomInRange(t *testing.T) {
	for i := 0; i < 100; i++ {
		e, err := Random()
		if err != nil {
			t.Fatal(err)
		}
		if e.Uint64() >= Modulus {
			t.Fatalf("Random() out of range: %v", e)
		}
	}
}

func TestRandomNotConstant(t *testing.T) {
	seen := make(map[Element]bool)
	for i := 0; i < 20; i++ {
		seen[MustRandom()] = true
	}
	if len(seen) < 2 {
		t.Error("Random() appears constant")
	}
}

func TestRandomVec(t *testing.T) {
	v, err := RandomVec(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 16 {
		t.Fatalf("len = %d", len(v))
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := Element(0x123456789abcdef), Element(0xfedcba987654321%Modulus)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	x := Element(0x123456789abcdef)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, _ = x.Inv()
	}
	_ = x
}

func TestBatchInv(t *testing.T) {
	f := func(raw []uint64) bool {
		xs := make([]Element, 0, len(raw))
		for _, v := range raw {
			e := New(v)
			if e.IsZero() {
				e = One
			}
			xs = append(xs, e)
		}
		invs, err := BatchInv(xs)
		if err != nil {
			return false
		}
		for i := range xs {
			if xs[i].Mul(invs[i]) != One {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBatchInvZero(t *testing.T) {
	if _, err := BatchInv([]Element{One, Zero, One}); err != ErrNotInvertible {
		t.Errorf("err = %v, want ErrNotInvertible", err)
	}
	out, err := BatchInv(nil)
	if err != nil || out != nil {
		t.Errorf("BatchInv(nil) = %v, %v", out, err)
	}
}

func BenchmarkBatchInv64(b *testing.B) {
	xs := MustRandomVec(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BatchInv(xs); err != nil {
			b.Fatal(err)
		}
	}
}
