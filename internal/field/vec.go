package field

import "fmt"

// Vector operations. These are used pervasively by the packed secret-sharing
// layer, where k secrets travel together as one vector.

// AddVec returns the element-wise sum a + b. Panics if lengths differ, since
// mismatched vector lengths indicate a programming error in batch layout.
func AddVec(a, b []Element) []Element {
	mustSameLen("AddVec", a, b)
	out := make([]Element, len(a))
	for i := range a {
		out[i] = a[i].Add(b[i])
	}
	return out
}

// SubVec returns the element-wise difference a - b.
func SubVec(a, b []Element) []Element {
	mustSameLen("SubVec", a, b)
	out := make([]Element, len(a))
	for i := range a {
		out[i] = a[i].Sub(b[i])
	}
	return out
}

// MulVec returns the element-wise (Schur) product a * b.
func MulVec(a, b []Element) []Element {
	mustSameLen("MulVec", a, b)
	out := make([]Element, len(a))
	for i := range a {
		out[i] = a[i].Mul(b[i])
	}
	return out
}

// ScalarMulVec returns c·a element-wise.
func ScalarMulVec(c Element, a []Element) []Element {
	out := make([]Element, len(a))
	for i := range a {
		out[i] = c.Mul(a[i])
	}
	return out
}

// NegVec returns -a element-wise.
func NegVec(a []Element) []Element {
	out := make([]Element, len(a))
	for i := range a {
		out[i] = a[i].Neg()
	}
	return out
}

// InnerProduct returns Σ a_i·b_i.
func InnerProduct(a, b []Element) Element {
	mustSameLen("InnerProduct", a, b)
	var acc Element
	for i := range a {
		acc = acc.Add(a[i].Mul(b[i]))
	}
	return acc
}

// Sum returns Σ a_i.
func Sum(a []Element) Element {
	var acc Element
	for _, v := range a {
		acc = acc.Add(v)
	}
	return acc
}

// EqualVec reports whether two vectors are identical.
func EqualVec(a, b []Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CloneVec returns a copy of a. Sharing layers copy at API boundaries so
// callers cannot alias internal state.
func CloneVec(a []Element) []Element {
	out := make([]Element, len(a))
	copy(out, a)
	return out
}

// Zeroize overwrites every element of v with zero. Sharing and protocol
// layers call it (usually via defer) on buffers that held secret
// material — polynomial coefficients, sampled randomness — so share data
// does not linger in heap pages after the role that held it has spoken.
// The wipe goes through a package-level sink so the compiler cannot
// dead-store-eliminate it.
func Zeroize(v []Element) {
	for i := range v {
		v[i] = 0
	}
	zeroizeSink(v)
}

// zeroizeSink defeats dead-store elimination of the wipe loop: an
// indirect call through a package variable keeps the cleared buffer
// observable as far as the compiler can prove.
var zeroizeSink = func([]Element) {}

// AppendVecBytes appends the fixed-size encodings of all elements to dst.
func AppendVecBytes(dst []byte, a []Element) []byte {
	for _, v := range a {
		dst = v.AppendBytes(dst)
	}
	return dst
}

// VecFromBytes decodes n elements from buf.
func VecFromBytes(buf []byte, n int) ([]Element, error) {
	if len(buf) < n*ElementSize {
		return nil, fmt.Errorf("field: short vector encoding: %d bytes for %d elements", len(buf), n)
	}
	out := make([]Element, n)
	for i := 0; i < n; i++ {
		e, err := FromBytes(buf[i*ElementSize:])
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func mustSameLen(op string, a, b []Element) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("field: %s: length mismatch %d != %d", op, len(a), len(b)))
	}
}
