package field

import "math/bits"

// Lazy-reduction arithmetic: the cached share-algebra engine applies the
// same precomputed coefficient rows to thousands of value vectors, so the
// inner product is its single hottest operation. InnerProductLazy keeps
// partial sums unreduced in a 128-bit accumulator and folds back into the
// field once per 4 terms instead of once per term, which removes three of
// every four conditional reductions from the loop while returning exactly
// the canonical value InnerProduct would.

// reduce128 folds a 128-bit value hi·2^64 + lo into canonical form.
// Correct for any hi < 2^60 (a 4-term block of canonical products keeps
// hi just above 2^60/2, well inside the bound): 2^64 ≡ 8 (mod p), so the
// value is congruent to hi·8 + lo>>61 + (lo&p), which one more folding
// round and a single conditional subtraction bring under p.
func reduce128(hi, lo uint64) Element {
	r := hi<<3 + lo>>61 // < 2^61 + 2^3 when hi < 2^58
	s := r + (lo & uint64(Modulus))
	// s < 2^62, so one more fold reaches [0, 2p) and one subtraction
	// canonicalizes.
	s = (s >> 61) + (s & uint64(Modulus))
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// InnerProductLazy returns Σ a_i·b_i, identical to InnerProduct, using
// lazy reduction: products accumulate unreduced in 128 bits and fold into
// the field once per 4 terms. Each product of canonical inputs is below
// 2^122, so a 4-term block stays below 2^124 and never overflows the
// accumulator. Panics on length mismatch like the canonical version.
func InnerProductLazy(a, b []Element) Element {
	mustSameLen("InnerProductLazy", a, b)
	var acc Element
	i := 0
	for ; i+4 <= len(a); i += 4 {
		hi, lo := bits.Mul64(uint64(a[i]), uint64(b[i]))
		h1, l1 := bits.Mul64(uint64(a[i+1]), uint64(b[i+1]))
		h2, l2 := bits.Mul64(uint64(a[i+2]), uint64(b[i+2]))
		h3, l3 := bits.Mul64(uint64(a[i+3]), uint64(b[i+3]))
		var c uint64
		lo, c = bits.Add64(lo, l1, 0)
		hi += h1 + c
		lo, c = bits.Add64(lo, l2, 0)
		hi += h2 + c
		lo, c = bits.Add64(lo, l3, 0)
		hi += h3 + c
		acc = acc.Add(reduce128(hi, lo))
	}
	for ; i < len(a); i++ {
		acc = acc.Add(a[i].Mul(b[i]))
	}
	return acc
}

// MatVecLazy applies an m-row coefficient matrix to the value vector v,
// returning (rows[0]·v, ..., rows[m-1]·v) via InnerProductLazy. Every row
// must have len(v) entries; this is the share-generation primitive of the
// sharing domain (one row per share index).
func MatVecLazy(rows [][]Element, v []Element) []Element {
	out := make([]Element, len(rows))
	for i, row := range rows {
		out[i] = InnerProductLazy(row, v)
	}
	return out
}
