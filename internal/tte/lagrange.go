package tte

import (
	"fmt"
	"math/big"
	"sort"
)

// Integer Lagrange machinery for exponent arithmetic. With evaluation
// points drawn from {1..n}, the Lagrange coefficient denominators divide
// Δ = n!, so Λ_i = Δ·λ_i(0) is always an integer; working with the Λ_i
// avoids inverting modulo the secret group order.

// factorial returns n! as a big integer.
func factorial(n int) *big.Int {
	out := big.NewInt(1)
	for i := 2; i <= n; i++ {
		out.Mul(out, big.NewInt(int64(i)))
	}
	return out
}

// scaledLagrangeAt returns the integers Λ_i = Δ·λ_i(at) for the point set
// xs (distinct values in 1..n) evaluated at `at`, where λ_i are the
// rational Lagrange coefficients: f(at) = Σ λ_i·f(x_i) for deg f < len(xs).
// The division is exact by construction; this is verified and reported as
// an error otherwise (which would indicate points outside 1..n).
func scaledLagrangeAt(delta *big.Int, xs []int, at int) ([]*big.Int, error) {
	if err := checkDistinctInts(xs); err != nil {
		return nil, err
	}
	out := make([]*big.Int, len(xs))
	for i, xi := range xs {
		num := new(big.Int).Set(delta)
		den := big.NewInt(1)
		for j, xj := range xs {
			if j == i {
				continue
			}
			num.Mul(num, big.NewInt(int64(at-xj)))
			den.Mul(den, big.NewInt(int64(xi-xj)))
		}
		q, r := new(big.Int).QuoRem(num, den, new(big.Int))
		if r.Sign() != 0 {
			return nil, fmt.Errorf("tte: Δ·λ_%d(%d) is not an integer (points %v)", xi, at, xs)
		}
		out[i] = q
	}
	return out, nil
}

// scaledLagrangeAtZero is the common reconstruction-at-zero case.
func scaledLagrangeAtZero(delta *big.Int, xs []int) ([]*big.Int, error) {
	return scaledLagrangeAt(delta, xs, 0)
}

func checkDistinctInts(xs []int) error {
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return fmt.Errorf("%w: %d", ErrDuplicateIndex, sorted[i])
		}
	}
	return nil
}
