package tte

import (
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Integer Lagrange machinery for exponent arithmetic. With evaluation
// points drawn from {1..n}, the Lagrange coefficient denominators divide
// Δ = n!, so Λ_i = Δ·λ_i(0) is always an integer; working with the Λ_i
// avoids inverting modulo the secret group order.

// factorial returns n! as a big integer.
func factorial(n int) *big.Int {
	out := big.NewInt(1)
	for i := 2; i <= n; i++ {
		out.Mul(out, big.NewInt(int64(i)))
	}
	return out
}

// The Λ vectors depend only on (Δ, xs, at) and the same qualified sets
// recur across every share-recovery and decryption round, so computed
// vectors live in a copy-on-write cache with lock-free reads, mirroring
// the sharing-domain engine. Entries are bounded: adversarially many
// distinct share subsets (e.g. during robust decoding sweeps) clear the
// cache wholesale instead of growing it without limit.
var (
	lagrangeMu    sync.Mutex
	lagrangeCache atomic.Pointer[map[string][]*big.Int]
)

// maxLagrangeCacheEntries bounds the cache; an epoch clear on overflow
// keeps the steady-state working set (a handful of qualified sets per
// run) hot while capping worst-case memory.
const maxLagrangeCacheEntries = 256

// lagrangeKey serializes (Δ, xs, at) into a cache key. Δ is keyed by
// value, not identity: callers rebuild it per run.
func lagrangeKey(delta *big.Int, xs []int, at int) string {
	buf := make([]byte, 0, 16+8*len(xs))
	buf = append(buf, delta.Text(16)...)
	buf = append(buf, '@')
	buf = strconv.AppendInt(buf, int64(at), 10)
	for _, x := range xs {
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	return string(buf)
}

// cloneBigs deep-copies a Λ vector so cache entries can never be
// corrupted through a returned alias.
func cloneBigs(in []*big.Int) []*big.Int {
	out := make([]*big.Int, len(in))
	for i, v := range in {
		out[i] = new(big.Int).Set(v)
	}
	return out
}

// scaledLagrangeAt returns the integers Λ_i = Δ·λ_i(at) for the point set
// xs (distinct values in 1..n) evaluated at `at`, where λ_i are the
// rational Lagrange coefficients: f(at) = Σ λ_i·f(x_i) for deg f < len(xs).
// The division is exact by construction; this is verified and reported as
// an error otherwise (which would indicate points outside 1..n).
// Results are cached per (Δ, xs, at); the returned vector is the caller's
// to mutate.
func scaledLagrangeAt(delta *big.Int, xs []int, at int) ([]*big.Int, error) {
	if err := checkDistinctInts(xs); err != nil {
		return nil, err
	}
	key := lagrangeKey(delta, xs, at)
	if m := lagrangeCache.Load(); m != nil {
		if cached, ok := (*m)[key]; ok {
			return cloneBigs(cached), nil
		}
	}
	out := make([]*big.Int, len(xs))
	for i, xi := range xs {
		num := new(big.Int).Set(delta)
		den := big.NewInt(1)
		for j, xj := range xs {
			if j == i {
				continue
			}
			num.Mul(num, big.NewInt(int64(at-xj)))
			den.Mul(den, big.NewInt(int64(xi-xj)))
		}
		q, r := new(big.Int).QuoRem(num, den, new(big.Int))
		if r.Sign() != 0 {
			return nil, fmt.Errorf("tte: Δ·λ_%d(%d) is not an integer (points %v)", xi, at, xs)
		}
		out[i] = q
	}
	lagrangeMu.Lock()
	old := lagrangeCache.Load()
	next := make(map[string][]*big.Int, 1)
	if old != nil && len(*old) < maxLagrangeCacheEntries {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[key] = cloneBigs(out)
	lagrangeCache.Store(&next)
	lagrangeMu.Unlock()
	return out, nil
}

// scaledLagrangeAtZero is the common reconstruction-at-zero case.
func scaledLagrangeAtZero(delta *big.Int, xs []int) ([]*big.Int, error) {
	return scaledLagrangeAt(delta, xs, 0)
}

func checkDistinctInts(xs []int) error {
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return fmt.Errorf("%w: %d", ErrDuplicateIndex, sorted[i])
		}
	}
	return nil
}
