package tte

import (
	"math/big"
	"testing"

	"yosompc/internal/paillier"
)

func verifiedSetup(t *testing.T, n, tt int) (*Threshold, PublicKey, []KeyShare, *VerificationKeys) {
	t.Helper()
	sc, err := NewThreshold(paillier.FixedTestKey(0))
	if err != nil {
		t.Fatal(err)
	}
	pk, shares, vk, err := sc.KeyGenVerified(n, tt)
	if err != nil {
		t.Fatal(err)
	}
	return sc, pk, shares, vk
}

func TestVerifiedPartialHonest(t *testing.T) {
	sc, pk, shares, vk := verifiedSetup(t, 4, 1)
	ct, err := sc.Encrypt(pk, big.NewInt(777), big.NewInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		part, err := sc.PartialDecrypt(pk, shares[i-1], ct)
		if err != nil {
			t.Fatal(err)
		}
		proof, err := sc.ProvePartial(pk, shares[i-1], ct, part, vk)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.VerifyPartial(pk, i, ct, part, vk, proof) {
			t.Errorf("honest partial %d rejected", i)
		}
	}
}

func TestVerifiedPartialDetectsCheating(t *testing.T) {
	sc, pk, shares, vk := verifiedSetup(t, 4, 1)
	ct, err := sc.Encrypt(pk, big.NewInt(10), big.NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	other, err := sc.Encrypt(pk, big.NewInt(99), big.NewInt(99))
	if err != nil {
		t.Fatal(err)
	}
	// A malicious party publishes the partial of a DIFFERENT ciphertext
	// (type-correct garbage that would corrupt the combination).
	badPart, err := sc.PartialDecrypt(pk, shares[0], other)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := sc.ProvePartial(pk, shares[0], other, badPart, vk)
	if err != nil {
		t.Fatal(err)
	}
	if sc.VerifyPartial(pk, 1, ct, badPart, vk, proof) {
		t.Error("partial of wrong ciphertext verified against ct")
	}
	// Claiming another party's index also fails.
	goodPart, err := sc.PartialDecrypt(pk, shares[0], ct)
	if err != nil {
		t.Fatal(err)
	}
	goodProof, err := sc.ProvePartial(pk, shares[0], ct, goodPart, vk)
	if err != nil {
		t.Fatal(err)
	}
	if sc.VerifyPartial(pk, 2, ct, goodPart, vk, goodProof) {
		t.Error("partial verified under the wrong index")
	}
}

func TestVerifiedPartialNilInputs(t *testing.T) {
	sc, pk, shares, vk := verifiedSetup(t, 3, 1)
	ct, err := sc.Encrypt(pk, big.NewInt(1), big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	part, err := sc.PartialDecrypt(pk, shares[0], ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ProvePartial(pk, shares[0], ct, part, nil); err == nil {
		t.Error("ProvePartial accepted nil verification keys")
	}
	if sc.VerifyPartial(pk, 1, ct, part, nil, nil) {
		t.Error("VerifyPartial accepted nil keys/proof")
	}
	if sc.VerifyPartial(pk, 99, ct, part, vk, nil) {
		t.Error("VerifyPartial accepted out-of-range index")
	}
}

func TestVerifiedResharingUpdatesKeys(t *testing.T) {
	sc, pk, shares, vk := verifiedSetup(t, 4, 1)
	m := big.NewInt(4242)
	ct, err := sc.Encrypt(pk, m, big.NewInt(10_000))
	if err != nil {
		t.Fatal(err)
	}

	// Parties 1 and 3 reshare with verification pieces.
	var resharings []*VerifiedSubShares
	byTarget := map[int][]SubShare{}
	for _, i := range []int{1, 3} {
		rs, err := sc.ReshareVerified(pk, shares[i-1], vk)
		if err != nil {
			t.Fatal(err)
		}
		resharings = append(resharings, rs)
		for _, sub := range rs.Subs {
			byTarget[sub.To()] = append(byTarget[sub.To()], sub)
		}
	}
	vk2, err := sc.UpdateVerificationKeys(pk, vk, resharings)
	if err != nil {
		t.Fatal(err)
	}
	if vk2.Epoch != 1 {
		t.Fatalf("epoch = %d", vk2.Epoch)
	}

	// Next-epoch shares produce partials that verify against vk2 and
	// still combine to the plaintext.
	next := make([]KeyShare, 4)
	var parts []PartialDec
	for j := 1; j <= 4; j++ {
		sh, err := sc.RecoverShare(pk, j, byTarget[j])
		if err != nil {
			t.Fatal(err)
		}
		next[j-1] = sh
		part, err := sc.PartialDecrypt(pk, sh, ct)
		if err != nil {
			t.Fatal(err)
		}
		proof, err := sc.ProvePartial(pk, sh, ct, part, vk2)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.VerifyPartial(pk, j, ct, part, vk2, proof) {
			t.Errorf("epoch-1 partial %d rejected", j)
		}
		parts = append(parts, part)
	}
	got, err := sc.Combine(pk, ct, parts[:2])
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Errorf("epoch-1 decryption = %v, want %v", got, m)
	}
	// Old-epoch keys must reject new-epoch partials.
	proof0, err := sc.ProvePartial(pk, next[0], ct, parts[0], vk2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.VerifyPartial(pk, 1, ct, parts[0], vk, proof0) {
		t.Error("epoch-0 keys verified an epoch-1 partial")
	}
}

func TestUpdateVerificationKeysTooFew(t *testing.T) {
	sc, pk, shares, vk := verifiedSetup(t, 4, 2)
	rs, err := sc.ReshareVerified(pk, shares[0], vk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.UpdateVerificationKeys(pk, vk, []*VerifiedSubShares{rs}); err == nil {
		t.Error("accepted fewer than t+1 resharings")
	}
}

func TestVerificationKeysSize(t *testing.T) {
	_, _, _, vk := verifiedSetup(t, 3, 1)
	if vk.Size() <= 0 {
		t.Error("non-positive verification key size")
	}
}
