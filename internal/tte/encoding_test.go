package tte

import (
	"math/big"
	"testing"

	"yosompc/internal/paillier"
)

func codecBackends(t *testing.T) map[string]interface {
	Scheme
	Codec
} {
	t.Helper()
	real, err := NewThreshold(paillier.FixedTestKey(1))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]interface {
		Scheme
		Codec
	}{
		"threshold-paillier": real,
		"sim":                NewSim(512),
	}
}

func TestPartialEncodeDecodeRoundTrip(t *testing.T) {
	for name, s := range codecBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			m := big.NewInt(2024)
			ct, err := s.Encrypt(pk, m, big.NewInt(10_000))
			if err != nil {
				t.Fatal(err)
			}
			var parts []PartialDec
			for _, i := range []int{2, 3} {
				p, err := s.PartialDecrypt(pk, shares[i-1], ct)
				if err != nil {
					t.Fatal(err)
				}
				buf, err := s.EncodePartial(p)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := s.DecodePartial(pk, buf)
				if err != nil {
					t.Fatal(err)
				}
				if p2.Index() != p.Index() || p2.Epoch() != p.Epoch() {
					t.Errorf("metadata changed: %d/%d vs %d/%d", p2.Index(), p2.Epoch(), p.Index(), p.Epoch())
				}
				parts = append(parts, p2)
			}
			got, err := s.Combine(pk, ct, parts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(m) != 0 {
				t.Errorf("decrypt via decoded partials = %v, want %v", got, m)
			}
		})
	}
}

func TestSubShareEncodeDecodeRoundTrip(t *testing.T) {
	for name, s := range codecBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			m := big.NewInt(5150)
			ct, err := s.Encrypt(pk, m, big.NewInt(10_000))
			if err != nil {
				t.Fatal(err)
			}
			// Reshare through serialization: every subshare crosses the wire.
			byTarget := make(map[int][]SubShare)
			for _, i := range []int{1, 4} {
				subs, err := s.Reshare(pk, shares[i-1])
				if err != nil {
					t.Fatal(err)
				}
				for _, sub := range subs {
					buf, err := s.EncodeSubShare(sub)
					if err != nil {
						t.Fatal(err)
					}
					sub2, err := s.DecodeSubShare(pk, buf)
					if err != nil {
						t.Fatal(err)
					}
					if sub2.From() != sub.From() || sub2.To() != sub.To() {
						t.Fatalf("metadata changed: %d→%d vs %d→%d", sub2.From(), sub2.To(), sub.From(), sub.To())
					}
					byTarget[sub2.To()] = append(byTarget[sub2.To()], sub2)
				}
			}
			next := make([]KeyShare, 4)
			for j := 1; j <= 4; j++ {
				sh, err := s.RecoverShare(pk, j, byTarget[j])
				if err != nil {
					t.Fatal(err)
				}
				next[j-1] = sh
			}
			got := decryptVia(t, s, pk, next, ct, []int{2, 3})
			if got.Cmp(m) != 0 {
				t.Errorf("decrypt after serialized resharing = %v, want %v", got, m)
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for name, s := range codecBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, _, err := s.KeyGen(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, bad := range [][]byte{nil, {1}, {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}} {
				if _, err := s.DecodePartial(pk, bad); err == nil {
					t.Errorf("DecodePartial accepted %v", bad)
				}
				if _, err := s.DecodeSubShare(pk, bad); err == nil {
					t.Errorf("DecodeSubShare accepted %v", bad)
				}
			}
			// Truncated value length.
			trunc := encodeBig(tagPartial, []uint32{1, 0}, big.NewInt(1))
			if _, err := s.DecodePartial(pk, trunc[:len(trunc)-1]); err == nil {
				t.Error("DecodePartial accepted truncated value")
			}
		})
	}
}

func TestSimEncodingPadsToModelledSize(t *testing.T) {
	s := NewSim(2048)
	pk, shares, err := s.KeyGen(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s.Encrypt(pk, big.NewInt(7), big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.PartialDecrypt(pk, shares[0], ct)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := s.EncodePartial(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != s.partSize() {
		t.Errorf("encoded sim partial is %d bytes, want modelled %d", len(buf), s.partSize())
	}
}

func TestEncodeBigNegative(t *testing.T) {
	v := big.NewInt(-123456)
	buf := encodeBig(tagSubShare, []uint32{1, 2, 3}, v)
	fields, got, err := decodeBig(tagSubShare, 3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(v) != 0 {
		t.Errorf("negative value round trip = %v, want %v", got, v)
	}
	if fields[0] != 1 || fields[1] != 2 || fields[2] != 3 {
		t.Errorf("fields = %v", fields)
	}
}
