package tte

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Property-based tests on the TE homomorphism, run on the ideal backend
// for speed (the real backend is exercised by the table-driven suite; the
// algebra under test is identical by the cross-backend tests).

func TestEvalLinearityProperty(t *testing.T) {
	s := NewSim(512)
	pk, shares, err := s.KeyGen(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msgs []uint32, coeffs []uint16) bool {
		n := len(msgs)
		if len(coeffs) < n {
			n = len(coeffs)
		}
		if n == 0 {
			return true
		}
		msgs, coeffs = msgs[:n], coeffs[:n]
		cts := make([]Ciphertext, n)
		cs := make([]*big.Int, n)
		want := new(big.Int)
		for i := 0; i < n; i++ {
			m := big.NewInt(int64(msgs[i]))
			ct, err := s.Encrypt(pk, m, big.NewInt(1<<32))
			if err != nil {
				return false
			}
			cts[i] = ct
			cs[i] = big.NewInt(int64(coeffs[i]))
			want.Add(want, new(big.Int).Mul(cs[i], m))
		}
		sum, err := s.Eval(pk, cts, cs)
		if err != nil {
			return false
		}
		parts := make([]PartialDec, 2)
		for j := 0; j < 2; j++ {
			p, err := s.PartialDecrypt(pk, shares[j], sum)
			if err != nil {
				return false
			}
			parts[j] = p
		}
		got, err := s.Combine(pk, sum, parts)
		return err == nil && got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvalComposesProperty(t *testing.T) {
	// Eval(Eval(x,a), b) ≡ Eval(x, a·b): nested linear combinations
	// compose (the offline phase chains TEval through the circuit).
	s := NewSim(512)
	pk, shares, err := s.KeyGen(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(m uint32, a, b uint16) bool {
		ct, err := s.Encrypt(pk, big.NewInt(int64(m)), big.NewInt(1<<32))
		if err != nil {
			return false
		}
		inner, err := s.Eval(pk, []Ciphertext{ct}, []*big.Int{big.NewInt(int64(a))})
		if err != nil {
			return false
		}
		outer, err := s.Eval(pk, []Ciphertext{inner}, []*big.Int{big.NewInt(int64(b))})
		if err != nil {
			return false
		}
		direct, err := s.Eval(pk, []Ciphertext{ct},
			[]*big.Int{new(big.Int).Mul(big.NewInt(int64(a)), big.NewInt(int64(b)))})
		if err != nil {
			return false
		}
		open := func(c Ciphertext) *big.Int {
			parts := make([]PartialDec, 2)
			for j := 0; j < 2; j++ {
				p, err := s.PartialDecrypt(pk, shares[j], c)
				if err != nil {
					return nil
				}
				parts[j] = p
			}
			v, err := s.Combine(pk, c, parts)
			if err != nil {
				return nil
			}
			return v
		}
		vo, vd := open(outer), open(direct)
		return vo != nil && vd != nil && vo.Cmp(vd) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReshareIsTransparentProperty(t *testing.T) {
	// Decryption commutes with resharing: for random messages and random
	// reshare subsets, epoch-1 shares open the same plaintext.
	s := NewSim(512)
	const n, tt = 5, 2
	pk, shares, err := s.KeyGen(n, tt)
	if err != nil {
		t.Fatal(err)
	}
	f := func(m uint32, pick uint8) bool {
		ct, err := s.Encrypt(pk, big.NewInt(int64(m)), big.NewInt(1<<32))
		if err != nil {
			return false
		}
		// Choose t+1 = 3 distinct resharers from the 5 parties.
		resharers := []int{1 + int(pick)%5, 1 + int(pick/5)%5, 0}
		seen := map[int]bool{}
		var rs []int
		for _, x := range resharers[:2] {
			if !seen[x] {
				seen[x] = true
				rs = append(rs, x)
			}
		}
		for x := 1; len(rs) < tt+1 && x <= n; x++ {
			if !seen[x] {
				seen[x] = true
				rs = append(rs, x)
			}
		}
		byTarget := map[int][]SubShare{}
		for _, i := range rs {
			subs, err := s.Reshare(pk, shares[i-1])
			if err != nil {
				return false
			}
			for _, sub := range subs {
				byTarget[sub.To()] = append(byTarget[sub.To()], sub)
			}
		}
		var parts []PartialDec
		for j := 1; j <= tt+1; j++ {
			sh, err := s.RecoverShare(pk, j, byTarget[j])
			if err != nil {
				return false
			}
			p, err := s.PartialDecrypt(pk, sh, ct)
			if err != nil {
				return false
			}
			parts = append(parts, p)
		}
		got, err := s.Combine(pk, ct, parts)
		return err == nil && got.Cmp(big.NewInt(int64(m))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
