package tte

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// Wire encodings for the TE messages that travel inside PKE envelopes:
// partial decryptions (posted during Re-encrypt/Decrypt) and key-resharing
// subshares (posted when handing tsk to the next committee).
//
// Layout (big-endian):
//
//	partial:  u8 tag | u32 index | u32 epoch | u8 sign | u32 len | value
//	subshare: u8 tag | u32 from | u32 to | u32 epoch | u8 sign | u32 len | value
//
// The sim backend appends zero padding up to its modelled size so that byte
// counts on the wire match the modelled deployment.

const (
	tagPartial  = 0x01
	tagSubShare = 0x02
)

// EncodePartial serializes a partial decryption produced by this scheme.
func (s *Threshold) EncodePartial(p PartialDec) ([]byte, error) {
	tp, ok := p.(*thresholdPartial)
	if !ok {
		return nil, fmt.Errorf("%w: partial", ErrWrongKey)
	}
	return encodeBig(tagPartial, []uint32{uint32(tp.index), uint32(tp.epoch)}, tp.v), nil //yosolint:vartime length-prefixed encoding is value-length dependent by construction; the envelope ciphertext size on the board reveals the same length
}

// DecodePartial parses a partial decryption serialized by EncodePartial.
func (s *Threshold) DecodePartial(pk PublicKey, data []byte) (PartialDec, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	fields, v, err := decodeBig(tagPartial, 2, data)
	if err != nil {
		return nil, err
	}
	return &thresholdPartial{
		index: int(fields[0]),
		epoch: int(fields[1]),
		v:     v,
		size:  tpk.ctBytes,
	}, nil
}

// EncodeSubShare serializes a resharing subshare produced by this scheme.
func (s *Threshold) EncodeSubShare(sub SubShare) ([]byte, error) {
	ts, ok := sub.(*thresholdSub)
	if !ok {
		return nil, fmt.Errorf("%w: subshare", ErrWrongKey)
	}
	return encodeBig(tagSubShare, []uint32{uint32(ts.from), uint32(ts.to), uint32(ts.epoch)}, ts.v), nil //yosolint:vartime length-prefixed encoding is value-length dependent by construction; the envelope ciphertext size on the board reveals the same length
}

// DecodeSubShare parses a subshare serialized by EncodeSubShare.
func (s *Threshold) DecodeSubShare(_ PublicKey, data []byte) (SubShare, error) {
	fields, v, err := decodeBig(tagSubShare, 3, data)
	if err != nil {
		return nil, err
	}
	return &thresholdSub{from: int(fields[0]), to: int(fields[1]), epoch: int(fields[2]), v: v}, nil
}

// EncodePartial serializes a sim partial, padded to the modelled size.
func (s *Sim) EncodePartial(p PartialDec) ([]byte, error) {
	sp, ok := p.(*simPartial)
	if !ok {
		return nil, fmt.Errorf("%w: partial", ErrWrongKey)
	}
	buf := encodeBig(tagPartial, []uint32{uint32(sp.index), uint32(sp.epoch)}, sp.value) //yosolint:vartime sim backend encoding; the output is padded to the fixed partial size immediately below
	return padTo(buf, s.partSize()), nil
}

// DecodePartial parses a sim partial.
func (s *Sim) DecodePartial(_ PublicKey, data []byte) (PartialDec, error) {
	fields, v, err := decodeBig(tagPartial, 2, data)
	if err != nil {
		return nil, err
	}
	return &simPartial{index: int(fields[0]), epoch: int(fields[1]), value: v, size: s.partSize()}, nil
}

// EncodeSubShare serializes a sim subshare, padded to the modelled size.
func (s *Sim) EncodeSubShare(sub SubShare) ([]byte, error) {
	ss, ok := sub.(*simSub)
	if !ok {
		return nil, fmt.Errorf("%w: subshare", ErrWrongKey)
	}
	buf := encodeBig(tagSubShare, []uint32{uint32(ss.from), uint32(ss.to), uint32(ss.epoch)}, big.NewInt(0))
	return padTo(buf, s.subSize()), nil
}

// DecodeSubShare parses a sim subshare.
func (s *Sim) DecodeSubShare(_ PublicKey, data []byte) (SubShare, error) {
	fields, _, err := decodeBig(tagSubShare, 3, data)
	if err != nil {
		return nil, err
	}
	return &simSub{from: int(fields[0]), to: int(fields[1]), epoch: int(fields[2]), size: s.subSize()}, nil
}

// Codec is the serialization surface both backends provide; the protocol
// layer uses it to move TE messages through PKE envelopes and to put real
// ciphertext bytes on the board (wire.go holds the ciphertext, key-share
// and public-key codecs).
type Codec interface {
	EncodePartial(p PartialDec) ([]byte, error)
	DecodePartial(pk PublicKey, data []byte) (PartialDec, error)
	EncodeSubShare(s SubShare) ([]byte, error)
	DecodeSubShare(pk PublicKey, data []byte) (SubShare, error)
	// EncodeCiphertext serializes a ciphertext as exactly Size() bytes;
	// DecodeCiphertext re-attaches the public plaintext bound (nil means
	// pk.MaxPlaintext()).
	EncodeCiphertext(ct Ciphertext) ([]byte, error)
	DecodeCiphertext(pk PublicKey, bound *big.Int, data []byte) (Ciphertext, error)
	// EncodeKeyShare/DecodeKeyShare serialize key shares for hand-off
	// inside PKE envelopes.
	EncodeKeyShare(sh KeyShare) ([]byte, error)
	DecodeKeyShare(pk PublicKey, data []byte) (KeyShare, error)
	// EncodePublicKey serializes the public key's board announcement.
	EncodePublicKey(pk PublicKey) ([]byte, error)
}

// Compile-time interface checks.
var (
	_ Scheme    = (*Threshold)(nil)
	_ Scheme    = (*Sim)(nil)
	_ Simulator = (*Threshold)(nil)
	_ Simulator = (*Sim)(nil)
	_ Codec     = (*Threshold)(nil)
	_ Codec     = (*Sim)(nil)
)

func encodeBig(tag byte, fields []uint32, v *big.Int) []byte {
	vb := v.Bytes()
	out := make([]byte, 0, 1+4*len(fields)+1+4+len(vb))
	out = append(out, tag)
	for _, f := range fields {
		out = binary.BigEndian.AppendUint32(out, f)
	}
	sign := byte(0)
	if v.Sign() < 0 {
		sign = 1
	}
	out = append(out, sign)
	out = binary.BigEndian.AppendUint32(out, uint32(len(vb)))
	out = append(out, vb...)
	return out
}

func decodeBig(tag byte, nFields int, data []byte) ([]uint32, *big.Int, error) {
	min := 1 + 4*nFields + 1 + 4
	if len(data) < min {
		return nil, nil, fmt.Errorf("%w: short message", ErrMalformedMessage)
	}
	if data[0] != tag {
		return nil, nil, fmt.Errorf("%w: tag %d, want %d", ErrMalformedMessage, data[0], tag)
	}
	fields := make([]uint32, nFields)
	off := 1
	for i := range fields {
		fields[i] = binary.BigEndian.Uint32(data[off:])
		off += 4
	}
	sign := data[off]
	off++
	vlen := int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	if len(data) < off+vlen {
		return nil, nil, fmt.Errorf("%w: truncated value", ErrMalformedMessage)
	}
	v := new(big.Int).SetBytes(data[off : off+vlen])
	if sign == 1 {
		v.Neg(v)
	}
	return fields, v, nil
}

func padTo(buf []byte, size int) []byte {
	if len(buf) >= size {
		return buf
	}
	out := make([]byte, size)
	copy(out, buf)
	return out
}
