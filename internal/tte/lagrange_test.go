package tte

import (
	"math/big"
	"sync"
	"testing"
)

// scaledLagrangeAtFresh is a cache-free reference computation of the
// Λ_i vectors, used to pin cached results (the cache keys by value, so a
// fresh Δ allocation would not bypass it).
func scaledLagrangeAtFresh(t *testing.T, delta *big.Int, xs []int, at int) []*big.Int {
	t.Helper()
	out := make([]*big.Int, len(xs))
	for i, xi := range xs {
		num := new(big.Int).Set(delta)
		den := big.NewInt(1)
		for j, xj := range xs {
			if j == i {
				continue
			}
			num.Mul(num, big.NewInt(int64(at-xj)))
			den.Mul(den, big.NewInt(int64(xi-xj)))
		}
		q, r := new(big.Int).QuoRem(num, den, new(big.Int))
		if r.Sign() != 0 {
			t.Fatalf("reference: Δ·λ_%d(%d) not integral", xi, at)
		}
		out[i] = q
	}
	return out
}

func TestScaledLagrangeCacheHitsMatchAndStayClean(t *testing.T) {
	delta := factorial(7)
	xs := []int{1, 3, 4, 6}
	want := scaledLagrangeAtFresh(t, delta, xs, 0)

	first, err := scaledLagrangeAtZero(delta, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if first[i].Cmp(want[i]) != 0 {
			t.Fatalf("Λ_%d = %v, want %v", i, first[i], want[i])
		}
	}
	// Mutate the returned vector: the cache must hand out clean copies.
	first[0].SetInt64(-12345)
	second, err := scaledLagrangeAtZero(new(big.Int).Set(delta), xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if second[i].Cmp(want[i]) != 0 {
			t.Fatalf("after caller mutation: Λ_%d = %v, want %v", i, second[i], want[i])
		}
	}
}

func TestScaledLagrangeCacheConcurrent(t *testing.T) {
	delta := factorial(9)
	sets := [][]int{{1, 2, 3}, {2, 4, 6}, {1, 5, 7, 9}, {3, 4, 5, 6, 7}}
	wants := make([][]*big.Int, len(sets))
	for i, xs := range sets {
		wants[i] = scaledLagrangeAtFresh(t, delta, xs, 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				i := (g + it) % len(sets)
				got, err := scaledLagrangeAtZero(delta, sets[i])
				if err != nil {
					t.Error(err)
					return
				}
				for j := range got {
					if got[j].Cmp(wants[i][j]) != 0 {
						t.Errorf("set %d entry %d diverged", i, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
