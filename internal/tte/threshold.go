package tte

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"yosompc/internal/modexp"
	"yosompc/internal/paillier"
)

// statSecurity is the statistical masking parameter (bits) used when
// resharing key shares over the integers.
const statSecurity = 80

// Threshold is the real backend: threshold Paillier (or its Damgård–Jurik
// degree-s generalization, plaintext space Z_{N^s}) with a Shamir-shared
// decryption exponent, Δ = n! integer Lagrange combination, and integer
// resharing. It holds the dealer key, which also powers SimPartialDecrypt
// (the security simulator knows the dealer secrets, per the paper's
// Appendix B hybrids).
type Threshold struct {
	dealer *paillier.PrivateKey
	dj     *paillier.DJKey
	random io.Reader
}

// NewThreshold builds the real backend around a dealer key, which must be a
// safe-prime key (paillier.GenerateSafeKey or a fixed test key).
func NewThreshold(dealer *paillier.PrivateKey) (*Threshold, error) {
	return NewThresholdDJ(dealer, 1)
}

// NewThresholdDJ builds the real backend at Damgård–Jurik degree s: the
// plaintext space grows to Z_{N^s}, giving deep circuits integer headroom
// without a larger modulus. s = 1 is plain threshold Paillier.
func NewThresholdDJ(dealer *paillier.PrivateKey, s int) (*Threshold, error) {
	if dealer == nil || dealer.M == nil {
		return nil, errors.New("tte: threshold backend requires a safe-prime dealer key")
	}
	dj, err := paillier.NewDJKey(dealer, s)
	if err != nil {
		return nil, err
	}
	return &Threshold{dealer: dealer, dj: dj, random: rand.Reader}, nil
}

// Name implements Scheme.
func (s *Threshold) Name() string { return "threshold-paillier" }

type thresholdPK struct {
	pk       *paillier.PublicKey
	dj       *paillier.DJKey
	n, t     int
	delta    *big.Int // n!
	maxPlain *big.Int // N/4
	ctBytes  int
}

func (p *thresholdPK) N() int                 { return p.n }
func (p *thresholdPK) T() int                 { return p.t }
func (p *thresholdPK) CiphertextSize() int    { return p.ctBytes }
func (p *thresholdPK) MaxPlaintext() *big.Int { return p.maxPlain }

type thresholdShare struct {
	index int
	epoch int
	d     *big.Int //yosolint:secret key-share evaluation d_i = F(i); signed after resharing
}

func (s *thresholdShare) Index() int { return s.index }
func (s *thresholdShare) Epoch() int { return s.epoch }
func (s *thresholdShare) Size() int  { return (s.d.BitLen() + 7) / 8 }

type thresholdCT struct {
	ct    *paillier.Ciphertext
	bound *big.Int
	size  int
}

func (c *thresholdCT) Bound() *big.Int { return c.bound }
func (c *thresholdCT) Size() int       { return c.size }

type thresholdPartial struct {
	index int
	epoch int
	v     *big.Int //yosolint:secret partial decryption c^(2Δ·d_i) mod N², secret until intentionally combined
	size  int
}

func (p *thresholdPartial) Index() int { return p.index }
func (p *thresholdPartial) Epoch() int { return p.epoch }
func (p *thresholdPartial) Size() int  { return p.size }

type thresholdSub struct {
	from, to int
	epoch    int      // epoch of the share being reshared
	v        *big.Int //yosolint:secret resharing evaluation f_from(to), blinds the next-epoch share
}

func (s *thresholdSub) From() int { return s.from }
func (s *thresholdSub) To() int   { return s.to }
func (s *thresholdSub) Size() int { return (s.v.BitLen() + 7) / 8 }

// KeyGen implements TKGen: it derives the decryption exponent
// d ≡ 0 (mod m), d ≡ 1 (mod N^s) and Shamir-shares it modulo N^s·m.
func (s *Threshold) KeyGen(n, t int) (PublicKey, []KeyShare, error) {
	if n < 1 || t < 0 || t >= n {
		return nil, nil, fmt.Errorf("tte: invalid committee parameters n=%d t=%d", n, t)
	}
	sk := s.dealer
	nm := new(big.Int).Mul(s.dj.Ns, sk.M)
	mInv := new(big.Int).ModInverse(sk.M, s.dj.Ns) //yosolint:vartime dealer-side one-time keygen: the dealer holds the full secret key and stdlib math/big has no constant-time inverse
	if mInv == nil {
		return nil, nil, errors.New("tte: m not invertible mod N^s")
	}
	d := new(big.Int).Mul(sk.M, mInv) // d ≡ 0 mod m, ≡ 1 mod N^s

	// Shamir-share d with a degree-t polynomial over Z_{Nm}.
	coeffs := make([]*big.Int, t+1)
	coeffs[0] = d
	for i := 1; i <= t; i++ {
		c, err := rand.Int(s.random, nm)
		if err != nil {
			return nil, nil, fmt.Errorf("tte: sampling share polynomial: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]KeyShare, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = &thresholdShare{index: i, d: evalIntPoly(coeffs, i, nm)} //yosolint:vartime dealer-side keygen evaluation of the key-sharing polynomial; stdlib math/big only
	}
	pub := &thresholdPK{
		pk:       &sk.PublicKey,
		dj:       s.dj,
		n:        n,
		t:        t,
		delta:    factorial(n),
		maxPlain: new(big.Int).Rsh(s.dj.Ns, 2),
		ctBytes:  s.dj.ByteLen(),
	}
	return pub, shares, nil
}

// evalIntPoly evaluates the polynomial at x, reducing modulo mod when mod is
// non-nil.
func evalIntPoly(coeffs []*big.Int, x int, mod *big.Int) *big.Int {
	xb := big.NewInt(int64(x))
	acc := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, xb)
		acc.Add(acc, coeffs[i])
		if mod != nil {
			acc.Mod(acc, mod)
		}
	}
	return acc
}

// Encrypt implements TEnc.
func (s *Threshold) Encrypt(pk PublicKey, m, bound *big.Int) (Ciphertext, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	if m.Sign() < 0 || bound == nil || m.Cmp(bound) > 0 {
		// The plaintext stays out of the error message by design.
		return nil, fmt.Errorf("tte: plaintext outside [0, bound]")
	}
	if bound.Cmp(tpk.maxPlain) > 0 {
		return nil, fmt.Errorf("%w: bound %v", ErrPlaintextTooBig, bound)
	}
	ct, err := s.dj.Encrypt(s.random, m)
	if err != nil {
		return nil, err
	}
	return &thresholdCT{ct: ct, bound: new(big.Int).Set(bound), size: tpk.ctBytes}, nil
}

// EncryptMany implements BatchEncrypter: the per-message validation of
// Encrypt, then the Paillier layer's batched encryption over the shared
// worker pool. Randomness is sampled serially inside the Paillier
// layer, so the ciphertexts are independent of the worker count.
func (s *Threshold) EncryptMany(pk PublicKey, ms []*big.Int, bound *big.Int, workers int) ([]Ciphertext, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	if bound == nil {
		return nil, fmt.Errorf("tte: plaintext outside [0, bound]")
	}
	if bound.Cmp(tpk.maxPlain) > 0 {
		return nil, fmt.Errorf("%w: bound %v", ErrPlaintextTooBig, bound)
	}
	for _, m := range ms {
		if m.Sign() < 0 || m.Cmp(bound) > 0 {
			// The plaintext stays out of the error message by design.
			return nil, fmt.Errorf("tte: plaintext outside [0, bound]")
		}
	}
	cts, err := s.dj.EncryptMany(s.random, ms, workers)
	if err != nil {
		return nil, err
	}
	out := make([]Ciphertext, len(cts))
	for i, ct := range cts {
		out[i] = &thresholdCT{ct: ct, bound: new(big.Int).Set(bound), size: tpk.ctBytes}
	}
	return out, nil
}

// Eval implements TEval with non-negative integer coefficients.
func (s *Threshold) Eval(pk PublicKey, cts []Ciphertext, coeffs []*big.Int) (Ciphertext, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	if len(cts) != len(coeffs) {
		return nil, fmt.Errorf("tte: eval: %d ciphertexts vs %d coefficients", len(cts), len(coeffs))
	}
	acc := &paillier.Ciphertext{C: big.NewInt(1)}
	bound := new(big.Int)
	term := new(big.Int)
	for i, c := range cts {
		tc, ok := c.(*thresholdCT)
		if !ok {
			return nil, fmt.Errorf("%w: ciphertext %d", ErrWrongKey, i)
		}
		if coeffs[i].Sign() < 0 {
			return nil, fmt.Errorf("%w: coefficient %d", ErrNegativeCoeff, i)
		}
		if coeffs[i].Sign() == 0 {
			continue
		}
		acc = s.dj.Add(acc, s.dj.ScalarMul(tc.ct, coeffs[i]))
		bound.Add(bound, term.Mul(coeffs[i], tc.bound))
		term = new(big.Int)
	}
	if bound.Cmp(tpk.maxPlain) > 0 {
		return nil, fmt.Errorf("%w: combined bound %v", ErrPlaintextTooBig, bound)
	}
	return &thresholdCT{ct: acc, bound: bound, size: tpk.ctBytes}, nil
}

// PartialDecrypt implements TPDec: v = c^(2Δ·d_i) mod N². It runs on
// the CRT engine path, which reduces the 2Δ·d_i exponent modulo the
// per-prime group orders before exponentiating — the share carries
// log₂(2Δ·N^s·m) ≈ n·log₂n + 2·s·log₂N bits that reduction shrinks to
// the group order. This backend holds the dealer key (see the Threshold
// doc comment), so the factorization is available wherever the scheme
// runs; PartialDecryptNaive keeps the full-exponent reference.
func (s *Threshold) PartialDecrypt(pk PublicKey, sh KeyShare, ct Ciphertext) (PartialDec, error) {
	return s.partialDecrypt(pk, sh, ct, true)
}

// PartialDecryptNaive is the retained naive reference for
// PartialDecrypt: one full-length exponentiation modulo N^{s+1}. The
// differential tests and the paillier hot-path benchmark pin the engine
// path to it bit-for-bit.
func (s *Threshold) PartialDecryptNaive(pk PublicKey, sh KeyShare, ct Ciphertext) (PartialDec, error) {
	return s.partialDecrypt(pk, sh, ct, false)
}

func (s *Threshold) partialDecrypt(pk PublicKey, sh KeyShare, ct Ciphertext, engine bool) (PartialDec, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	tsh, ok := sh.(*thresholdShare)
	if !ok {
		return nil, fmt.Errorf("%w: key share", ErrWrongKey)
	}
	tct, ok := ct.(*thresholdCT)
	if !ok {
		return nil, fmt.Errorf("%w: ciphertext", ErrWrongKey)
	}
	exp := new(big.Int).Lsh(tsh.d, 1) // 2·d_i
	exp.Mul(exp, tpk.delta)           // 2Δ·d_i
	var v *big.Int
	if engine {
		v, err = s.dj.ExpSignedCRT(tct.ct.C, exp)
	} else {
		v, err = modexp.ExpSigned(tct.ct.C, exp, s.dj.Ns1)
	}
	if err != nil {
		return nil, err
	}
	return &thresholdPartial{index: tsh.index, epoch: tsh.epoch, v: v, size: tpk.ctBytes}, nil
}

// Combine implements TDec: c' = Π v_i^(2Λ_i) where Λ_i = Δ·λ_i(0), then the
// plaintext is L(c')·(4Δ²·Δ^epoch)⁻¹ mod N. The t+1-term product runs
// as one Straus multi-exponentiation (shared squaring chain across all
// partials) and Δ^epoch comes from the cached power ladder;
// CombineNaive keeps the term-by-term reference.
func (s *Threshold) Combine(pk PublicKey, ct Ciphertext, parts []PartialDec) (*big.Int, error) {
	return s.combine(pk, parts, true) //yosolint:vartime partial decryptions are public board messages; the combiner is the designated plaintext recipient
}

// CombineNaive is the retained naive reference for Combine: one
// exponentiation per partial and a fresh Δ^epoch exponentiation. The
// differential tests and the paillier hot-path benchmark pin the
// engine path to it bit-for-bit.
func (s *Threshold) CombineNaive(pk PublicKey, ct Ciphertext, parts []PartialDec) (*big.Int, error) {
	return s.combine(pk, parts, false) //yosolint:vartime partial decryptions are public board messages; the combiner is the designated plaintext recipient
}

func (s *Threshold) combine(pk PublicKey, parts []PartialDec, engine bool) (*big.Int, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	chosen, epoch, err := selectPartials(parts, tpk.t) //yosolint:vartime combine-side selection: the combiner is the designated plaintext recipient
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(chosen))
	for i, p := range chosen {
		idx[i] = p.Index()
	}
	lambdas, err := scaledLagrangeAtZero(tpk.delta, idx)
	if err != nil {
		return nil, err
	}
	var acc *big.Int
	if engine {
		bases := make([]*big.Int, len(chosen))
		exps := make([]*big.Int, len(chosen))
		for i, p := range chosen {
			bases[i] = p.(*thresholdPartial).v
			exps[i] = new(big.Int).Lsh(lambdas[i], 1) // 2Λ_i
		}
		acc, err = modexp.MultiExp(s.dj.Ns1, bases, exps)
		if err != nil {
			return nil, err
		}
	} else {
		acc = big.NewInt(1)
		for i, p := range chosen {
			tp := p.(*thresholdPartial)
			exp := new(big.Int).Lsh(lambdas[i], 1) // 2Λ_i
			term, err := modexp.ExpSigned(tp.v, exp, s.dj.Ns1)
			if err != nil {
				return nil, err
			}
			acc.Mul(acc, term)
			acc.Mod(acc, s.dj.Ns1)
		}
	}
	// acc = (1+N)^(4Δ²·Δ^epoch·M) mod N^{s+1} for well-formed inputs;
	// extract the exponent with the Damgård–Jurik recursion.
	lVal, err := s.dj.DLogOnePlusN(acc)
	if err != nil {
		return nil, fmt.Errorf("%w: combination is not a valid decryption", ErrMalformedMessage)
	}
	// Divide by 4Δ²·Δ^epoch mod N^s.
	div := new(big.Int).Mul(tpk.delta, tpk.delta)
	div.Lsh(div, 2)
	if epoch > 0 {
		dp, err := s.deltaPower(tpk, epoch, engine)
		if err != nil {
			return nil, err
		}
		div.Mul(div, dp)
	}
	divInv := new(big.Int).ModInverse(div, s.dj.Ns)
	if divInv == nil {
		return nil, errors.New("tte: combination divisor not invertible")
	}
	m := lVal.Mul(lVal, divInv)
	m.Mod(m, s.dj.Ns)
	return m, nil
}

// deltaPower returns Δ^epoch mod N^s — from the process-global power
// ladder on the engine path (one cached multiplication per new epoch
// instead of a full exponentiation at every Combine), by direct Exp on
// the naive path. Ladder entries are shared; callers must not mutate
// the returned value.
func (s *Threshold) deltaPower(tpk *thresholdPK, epoch int, engine bool) (*big.Int, error) {
	if !engine {
		return new(big.Int).Exp(tpk.delta, big.NewInt(int64(epoch)), s.dj.Ns), nil
	}
	return modexp.Ladder(tpk.delta, s.dj.Ns).Pow(epoch)
}

// selectPartials validates and picks t+1 partials with distinct indices and
// a consistent epoch, preferring lower indices for determinism.
func selectPartials(parts []PartialDec, t int) ([]PartialDec, int, error) {
	seen := make(map[int]PartialDec, len(parts))
	epoch := -1
	for _, p := range parts {
		if p == nil {
			continue
		}
		if epoch == -1 {
			epoch = p.Epoch()
		} else if p.Epoch() != epoch {
			return nil, 0, ErrEpochMismatch
		}
		if _, dup := seen[p.Index()]; dup {
			return nil, 0, fmt.Errorf("%w: partial from %d", ErrDuplicateIndex, p.Index())
		}
		seen[p.Index()] = p
	}
	if len(seen) < t+1 {
		return nil, 0, fmt.Errorf("%w: have %d, need %d", ErrTooFewPartials, len(seen), t+1)
	}
	idx := make([]int, 0, len(seen))
	for i := range seen {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	chosen := make([]PartialDec, t+1)
	for i := 0; i <= t; i++ {
		chosen[i] = seen[idx[i]]
	}
	return chosen, epoch, nil
}

// Reshare implements TKRes: share d_i with a fresh degree-t integer
// polynomial whose non-constant coefficients carry statSecurity bits of
// statistical masking.
func (s *Threshold) Reshare(pk PublicKey, sh KeyShare) ([]SubShare, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	tsh, ok := sh.(*thresholdShare)
	if !ok {
		return nil, fmt.Errorf("%w: key share", ErrWrongKey)
	}
	// Masking bound: |d_i|·Δ·2^statSecurity (at least N^s·m·Δ·2^σ for
	// epoch 0).
	mag := new(big.Int).Abs(tsh.d)
	nm := new(big.Int).Mul(s.dj.Ns, s.dealer.M)
	if mag.Cmp(nm) < 0 { //yosolint:vartime sizes the masking bound; reveals only the share's magnitude class, which its wire-encoding length reveals regardless
		mag = nm
	}
	bound := new(big.Int).Mul(mag, tpk.delta)
	bound.Lsh(bound, statSecurity)

	coeffs := make([]*big.Int, tpk.t+1)
	coeffs[0] = tsh.d
	for i := 1; i <= tpk.t; i++ {
		c, err := rand.Int(s.random, bound)
		if err != nil {
			return nil, fmt.Errorf("tte: sampling reshare polynomial: %w", err)
		}
		coeffs[i] = c
	}
	subs := make([]SubShare, tpk.n)
	for j := 1; j <= tpk.n; j++ {
		subs[j-1] = &thresholdSub{
			from:  tsh.index,
			to:    j,
			epoch: tsh.epoch,
			v:     evalIntPoly(coeffs, j, nil), //yosolint:vartime role-side resharing of its own key share; stdlib math/big only, residual risk documented in docs/STATIC_ANALYSIS.md
		}
	}
	return subs, nil
}

// RecoverShare implements TKRec: d'_j = Σ Λ_i·g_i(j) over t+1 resharing
// parties, advancing the epoch (the effective secret gains a Δ factor,
// which Combine divides out).
func (s *Threshold) RecoverShare(pk PublicKey, index int, subs []SubShare) (KeyShare, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]*thresholdSub, len(subs))
	epoch := -1
	for _, sub := range subs {
		ts, ok := sub.(*thresholdSub)
		if !ok {
			return nil, fmt.Errorf("%w: subshare", ErrWrongKey)
		}
		if ts.to != index {
			return nil, fmt.Errorf("%w: subshare addressed to %d, not %d", ErrMalformedMessage, ts.to, index)
		}
		if epoch == -1 {
			epoch = ts.epoch
		} else if ts.epoch != epoch {
			return nil, ErrEpochMismatch
		}
		if _, dup := seen[ts.from]; dup {
			return nil, fmt.Errorf("%w: subshare from %d", ErrDuplicateIndex, ts.from)
		}
		seen[ts.from] = ts
	}
	if len(seen) < tpk.t+1 {
		return nil, fmt.Errorf("%w: have %d subshares, need %d", ErrTooFewPartials, len(seen), tpk.t+1)
	}
	froms := make([]int, 0, len(seen))
	for f := range seen {
		froms = append(froms, f)
	}
	sort.Ints(froms)
	froms = froms[:tpk.t+1]
	lambdas, err := scaledLagrangeAtZero(tpk.delta, froms)
	if err != nil {
		return nil, err
	}
	d := new(big.Int)
	term := new(big.Int)
	for i, f := range froms {
		d.Add(d, term.Mul(lambdas[i], seen[f].v))
		term = new(big.Int)
	}
	return &thresholdShare{index: index, epoch: epoch + 1, d: d}, nil
}

// SimPartialDecrypt implements SimTPDec (Definition 2). Given the true
// plaintext-bearing ciphertext, a target message, the corrupt parties'
// key shares (which the YOSO simulator extracts from their NIZKs), and the
// honest indices to simulate, it produces honest partial decryptions that
// combine with honestly-computed corrupt partials to the target.
func (s *Threshold) SimPartialDecrypt(pk PublicKey, ct Ciphertext, target *big.Int,
	corrupt []KeyShare, honest []int) ([]PartialDec, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	tct, ok := ct.(*thresholdCT)
	if !ok {
		return nil, fmt.Errorf("%w: ciphertext", ErrWrongKey)
	}
	// The simulator knows the dealer key: recover the true plaintext M.
	m, err := s.dj.Decrypt(tct.ct)
	if err != nil {
		return nil, err
	}
	mInv := new(big.Int).ModInverse(m, s.dj.Ns) //yosolint:vartime simulator-only equivocation retargeting; never executed by protocol roles
	if mInv == nil {
		return nil, errors.New("tte: true plaintext not invertible mod N^s; cannot retarget")
	}
	epoch := 0
	points := []int{0}
	values := []*big.Int{nil} // filled below with D0
	for _, c := range corrupt {
		tc, ok := c.(*thresholdShare)
		if !ok {
			return nil, fmt.Errorf("%w: corrupt share", ErrWrongKey)
		}
		epoch = tc.epoch
		points = append(points, tc.index)
		values = append(values, tc.d)
	}
	// D0 ≡ 0 (mod m), D0 ≡ Δ^epoch·target·M⁻¹ (mod N^s).
	resN := new(big.Int).Mul(target, mInv)
	if epoch > 0 {
		dp, err := s.deltaPower(tpk, epoch, true)
		if err != nil {
			return nil, err
		}
		resN.Mul(resN, dp)
	}
	resN.Mod(resN, s.dj.Ns)
	mInvModNs := new(big.Int).ModInverse(s.dealer.M, s.dj.Ns) //yosolint:vartime simulator-only equivocation retargeting; never executed by protocol roles
	d0 := new(big.Int).Mul(s.dealer.M, mInvModNs)
	d0.Mul(d0, resN)
	nm := new(big.Int).Mul(s.dj.Ns, s.dealer.M)
	d0.Mod(d0, nm) //yosolint:vartime simulator-only equivocation retargeting; never executed by protocol roles
	values[0] = d0

	// Pad to t+1 interpolation points using free honest indices with
	// random share values (those ARE their simulated shares).
	free := map[int]*big.Int{}
	hi := 0
	for len(points) < tpk.t+1 {
		if hi >= len(honest) {
			return nil, errors.New("tte: not enough points to determine simulation polynomial")
		}
		j := honest[hi]
		hi++
		v, err := rand.Int(s.random, nm)
		if err != nil {
			return nil, err
		}
		free[j] = v
		points = append(points, j)
		values = append(values, v)
	}

	out := make([]PartialDec, 0, len(honest))
	for _, j := range honest {
		var exp *big.Int
		if v, isFree := free[j]; isFree {
			// 2Δ·d̂_j for the freely chosen share.
			exp = new(big.Int).Mul(tpk.delta, v)
			exp.Lsh(exp, 1)
		} else {
			// 2·(Δ·F(j)) with Δ·F(j) = Σ Λ_i(j)·value_i, an integer.
			lambdas, err := scaledLagrangeAt(tpk.delta, points, j)
			if err != nil {
				return nil, err
			}
			w := new(big.Int)
			term := new(big.Int)
			for i := range points {
				w.Add(w, term.Mul(lambdas[i], values[i]))
				term = new(big.Int)
			}
			exp = w.Lsh(w, 1)
		}
		v, err := s.dj.ExpSignedCRT(tct.ct.C, exp)
		if err != nil {
			return nil, err
		}
		out = append(out, &thresholdPartial{index: j, epoch: epoch, v: v, size: tpk.ctBytes})
	}
	return out, nil
}

func (s *Threshold) pub(pk PublicKey) (*thresholdPK, error) {
	tpk, ok := pk.(*thresholdPK)
	if !ok {
		return nil, fmt.Errorf("%w: public key", ErrWrongKey)
	}
	return tpk, nil
}
