package tte

import (
	"math/big"
	"testing"
)

func bigOne() *big.Int { return big.NewInt(1) }

// FuzzDecode checks that the wire decoders never panic on arbitrary bytes
// (they parse attacker-controlled envelope contents).
func FuzzDecode(f *testing.F) {
	s := NewSim(512)
	pk, shares, err := s.KeyGen(3, 1)
	if err != nil {
		f.Fatal(err)
	}
	ct, err := s.Encrypt(pk, bigOne(), bigOne())
	if err != nil {
		f.Fatal(err)
	}
	p, err := s.PartialDecrypt(pk, shares[0], ct)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := s.EncodePartial(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	subs, err := s.Reshare(pk, shares[0])
	if err != nil {
		f.Fatal(err)
	}
	subEnc, err := s.EncodeSubShare(subs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(subEnc)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = s.DecodePartial(pk, data)
		_, _ = s.DecodeSubShare(pk, data)
	})
}
