package tte

import (
	"encoding/binary"
	"fmt"
	"math/big"

	"yosompc/internal/paillier"
)

// Wire encodings for the TE messages that travel on the board in the clear
// (ciphertexts, the public key's announcement) or inside PKE envelopes
// (key shares handed to the next committee). Partials and subshares live in
// encoding.go; layouts are documented in docs/WIRE.md.
//
// Ciphertexts encode as a fixed-width big-endian value of exactly
// Ciphertext.Size() bytes, with no header: the size is pinned by the public
// key and the plaintext bound is public context re-supplied at decode (the
// bound is an evaluation artifact, not wire data), so measured bytes equal
// modelled bytes.

const (
	tagKeyShare = 0x03
	tagPubInfo  = 0x04
)

// EncodeCiphertext serializes a ciphertext as Size() fixed-width bytes.
func (s *Threshold) EncodeCiphertext(ct Ciphertext) ([]byte, error) {
	tc, ok := ct.(*thresholdCT)
	if !ok {
		return nil, fmt.Errorf("%w: ciphertext", ErrWrongKey)
	}
	if tc.ct.C.Sign() < 0 || tc.ct.C.BitLen() > 8*tc.size {
		return nil, fmt.Errorf("%w: ciphertext value exceeds %d bytes", ErrMalformedMessage, tc.size)
	}
	return tc.ct.C.FillBytes(make([]byte, tc.size)), nil
}

// DecodeCiphertext parses a fixed-width ciphertext. bound is the public
// plaintext bound under which the ciphertext was produced; nil defaults to
// pk.MaxPlaintext().
func (s *Threshold) DecodeCiphertext(pk PublicKey, bound *big.Int, data []byte) (Ciphertext, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	if len(data) != tpk.ctBytes {
		return nil, fmt.Errorf("%w: ciphertext must be %d bytes, got %d", ErrMalformedMessage, tpk.ctBytes, len(data))
	}
	if bound == nil {
		bound = tpk.maxPlain
	}
	return &thresholdCT{
		ct:    &paillier.Ciphertext{C: new(big.Int).SetBytes(data)},
		bound: new(big.Int).Set(bound),
		size:  tpk.ctBytes,
	}, nil
}

// EncodeCiphertext serializes a sim ciphertext as Size() fixed-width bytes.
func (s *Sim) EncodeCiphertext(ct Ciphertext) ([]byte, error) {
	sc, ok := ct.(*simCT)
	if !ok {
		return nil, fmt.Errorf("%w: ciphertext", ErrWrongKey)
	}
	if sc.value.Sign() < 0 || sc.value.BitLen() > 8*sc.size {
		return nil, fmt.Errorf("%w: ciphertext value exceeds %d bytes", ErrMalformedMessage, sc.size)
	}
	return sc.value.FillBytes(make([]byte, sc.size)), nil
}

// DecodeCiphertext parses a fixed-width sim ciphertext; bound defaults to
// pk.MaxPlaintext() when nil.
func (s *Sim) DecodeCiphertext(pk PublicKey, bound *big.Int, data []byte) (Ciphertext, error) {
	spk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	if len(data) != spk.ctBytes {
		return nil, fmt.Errorf("%w: ciphertext must be %d bytes, got %d", ErrMalformedMessage, spk.ctBytes, len(data))
	}
	if bound == nil {
		bound = spk.maxPlain
	}
	return &simCT{
		value: new(big.Int).SetBytes(data),
		bound: new(big.Int).Set(bound),
		size:  spk.ctBytes,
	}, nil
}

// EncodeKeyShare serializes a key share (travels only inside PKE
// envelopes: it is secret material).
func (s *Threshold) EncodeKeyShare(sh KeyShare) ([]byte, error) {
	tsh, ok := sh.(*thresholdShare)
	if !ok {
		return nil, fmt.Errorf("%w: key share", ErrWrongKey)
	}
	return encodeBig(tagKeyShare, []uint32{uint32(tsh.index), uint32(tsh.epoch)}, tsh.d), nil //yosolint:vartime length-prefixed encoding is value-length dependent by construction; the PKE envelope size reveals the same length
}

// DecodeKeyShare parses a key share serialized by EncodeKeyShare.
func (s *Threshold) DecodeKeyShare(_ PublicKey, data []byte) (KeyShare, error) {
	fields, d, err := decodeBig(tagKeyShare, 2, data)
	if err != nil {
		return nil, err
	}
	return &thresholdShare{index: int(fields[0]), epoch: int(fields[1]), d: d}, nil
}

// EncodeKeyShare serializes a sim key share, padded to the modelled size.
func (s *Sim) EncodeKeyShare(sh KeyShare) ([]byte, error) {
	ssh, ok := sh.(*simShare)
	if !ok {
		return nil, fmt.Errorf("%w: key share", ErrWrongKey)
	}
	buf := encodeBig(tagKeyShare, []uint32{uint32(ssh.index), uint32(ssh.epoch)}, big.NewInt(0))
	return padTo(buf, s.shareSize()), nil
}

// DecodeKeyShare parses a sim key share.
func (s *Sim) DecodeKeyShare(_ PublicKey, data []byte) (KeyShare, error) {
	fields, _, err := decodeBig(tagKeyShare, 2, data)
	if err != nil {
		return nil, err
	}
	return &simShare{index: int(fields[0]), epoch: int(fields[1]), size: s.shareSize()}, nil
}

// EncodePublicKey serializes the public key's board announcement: the
// public metadata (committee parameters and ciphertext width), zero-padded
// to the modelled announcement size CiphertextSize()/2. The full evaluation
// key material stays with the dealer in both backends.
func (s *Threshold) EncodePublicKey(pk PublicKey) ([]byte, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	return encodePubInfo(tpk.n, tpk.t, tpk.ctBytes), nil
}

// EncodePublicKey serializes the sim public key's board announcement.
func (s *Sim) EncodePublicKey(pk PublicKey) ([]byte, error) {
	spk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	return encodePubInfo(spk.n, spk.t, spk.ctBytes), nil
}

func encodePubInfo(n, t, ctBytes int) []byte {
	buf := make([]byte, 0, 13)
	buf = append(buf, tagPubInfo)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t))
	buf = binary.BigEndian.AppendUint32(buf, uint32(ctBytes))
	return padTo(buf, ctBytes/2)
}

// DecodePublicKeyInfo parses a public-key announcement into its metadata
// (n, t, ciphertext width). It is backend-independent: auditors use it to
// validate board traffic without dealer state.
func DecodePublicKeyInfo(data []byte) (n, t, ctBytes int, err error) {
	if len(data) < 13 {
		return 0, 0, 0, fmt.Errorf("%w: short public key announcement", ErrMalformedMessage)
	}
	if data[0] != tagPubInfo {
		return 0, 0, 0, fmt.Errorf("%w: tag %d, want %d", ErrMalformedMessage, data[0], tagPubInfo)
	}
	n = int(binary.BigEndian.Uint32(data[1:]))
	t = int(binary.BigEndian.Uint32(data[5:]))
	ctBytes = int(binary.BigEndian.Uint32(data[9:]))
	return n, t, ctBytes, nil
}
