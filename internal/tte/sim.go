package tte

import (
	"fmt"
	"math/big"
	"sort"
)

// Sim is the ideal-functionality backend. It performs the same integer
// arithmetic as the real scheme on in-the-clear values while *modelling*
// wire sizes for a deployment with the configured modulus, so that
// communication sweeps at committee sizes in the thousands measure the
// same byte counts the real backend would produce, without big-integer
// exponentiations dominating wall clock.
//
// Sim provides no confidentiality. It exists for scaling experiments and is
// cross-checked against Threshold at small n by the test suite.
type Sim struct {
	// ModulusBits is the modelled Paillier modulus size (e.g. 2048).
	ModulusBits int
}

// NewSim returns a Sim backend modelling the given modulus size.
func NewSim(modulusBits int) *Sim {
	if modulusBits <= 0 {
		modulusBits = 2048
	}
	return &Sim{ModulusBits: modulusBits}
}

// Name implements Scheme.
func (s *Sim) Name() string { return "sim" }

// modelled sizes in bytes.
func (s *Sim) ctSize() int    { return s.ModulusBits / 4 } // element of Z_{N²}
func (s *Sim) shareSize() int { return s.ModulusBits / 4 } // ≈ |Nm|
func (s *Sim) partSize() int  { return s.ModulusBits / 4 }
func (s *Sim) subSize() int   { return s.ModulusBits/4 + statSecurity/8 }

type simPK struct {
	n, t     int
	maxPlain *big.Int
	ctBytes  int
}

func (p *simPK) N() int                 { return p.n }
func (p *simPK) T() int                 { return p.t }
func (p *simPK) CiphertextSize() int    { return p.ctBytes }
func (p *simPK) MaxPlaintext() *big.Int { return p.maxPlain }

type simShare struct {
	index, epoch int
	size         int
}

func (s *simShare) Index() int { return s.index }
func (s *simShare) Epoch() int { return s.epoch }
func (s *simShare) Size() int  { return s.size }

type simCT struct {
	value *big.Int
	bound *big.Int
	size  int
}

func (c *simCT) Bound() *big.Int { return c.bound }
func (c *simCT) Size() int       { return c.size }

type simPartial struct {
	index, epoch int
	value        *big.Int //yosolint:secret simulated partial carries the plaintext in the clear
	size         int
}

func (p *simPartial) Index() int { return p.index }
func (p *simPartial) Epoch() int { return p.epoch }
func (p *simPartial) Size() int  { return p.size }

type simSub struct {
	from, to, epoch int
	size            int
}

func (s *simSub) From() int { return s.from }
func (s *simSub) To() int   { return s.to }
func (s *simSub) Size() int { return s.size }

// KeyGen implements TKGen.
func (s *Sim) KeyGen(n, t int) (PublicKey, []KeyShare, error) {
	if n < 1 || t < 0 || t >= n {
		return nil, nil, fmt.Errorf("tte: invalid committee parameters n=%d t=%d", n, t)
	}
	max := new(big.Int).Lsh(big.NewInt(1), uint(s.ModulusBits-2))
	shares := make([]KeyShare, n)
	for i := 1; i <= n; i++ {
		shares[i-1] = &simShare{index: i, size: s.shareSize()}
	}
	return &simPK{n: n, t: t, maxPlain: max, ctBytes: s.ctSize()}, shares, nil
}

// Encrypt implements TEnc.
func (s *Sim) Encrypt(pk PublicKey, m, bound *big.Int) (Ciphertext, error) {
	spk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	if m.Sign() < 0 || bound == nil || m.Cmp(bound) > 0 {
		return nil, fmt.Errorf("tte: plaintext %v outside [0, bound]", m)
	}
	if bound.Cmp(spk.maxPlain) > 0 {
		return nil, fmt.Errorf("%w: bound %v", ErrPlaintextTooBig, bound)
	}
	return &simCT{value: new(big.Int).Set(m), bound: new(big.Int).Set(bound), size: spk.ctBytes}, nil
}

// EncryptMany implements BatchEncrypter. The sim backend has no
// exponentiations to amortize, so this is exactly n Encrypt calls; it
// exists so sweeps exercise the same batched driver paths as the real
// backend.
func (s *Sim) EncryptMany(pk PublicKey, ms []*big.Int, bound *big.Int, _ int) ([]Ciphertext, error) {
	out := make([]Ciphertext, len(ms))
	for i, m := range ms {
		ct, err := s.Encrypt(pk, m, bound)
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// Eval implements TEval.
func (s *Sim) Eval(pk PublicKey, cts []Ciphertext, coeffs []*big.Int) (Ciphertext, error) {
	spk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	if len(cts) != len(coeffs) {
		return nil, fmt.Errorf("tte: eval: %d ciphertexts vs %d coefficients", len(cts), len(coeffs))
	}
	val := new(big.Int)
	bound := new(big.Int)
	term := new(big.Int)
	for i, c := range cts {
		sc, ok := c.(*simCT)
		if !ok {
			return nil, fmt.Errorf("%w: ciphertext %d", ErrWrongKey, i)
		}
		if coeffs[i].Sign() < 0 {
			return nil, fmt.Errorf("%w: coefficient %d", ErrNegativeCoeff, i)
		}
		val.Add(val, term.Mul(coeffs[i], sc.value))
		term = new(big.Int)
		bound.Add(bound, term.Mul(coeffs[i], sc.bound))
		term = new(big.Int)
	}
	if bound.Cmp(spk.maxPlain) > 0 {
		return nil, fmt.Errorf("%w: combined bound %v", ErrPlaintextTooBig, bound)
	}
	return &simCT{value: val, bound: bound, size: spk.ctBytes}, nil
}

// PartialDecrypt implements TPDec.
func (s *Sim) PartialDecrypt(pk PublicKey, sh KeyShare, ct Ciphertext) (PartialDec, error) {
	if _, err := s.pub(pk); err != nil {
		return nil, err
	}
	ssh, ok := sh.(*simShare)
	if !ok {
		return nil, fmt.Errorf("%w: key share", ErrWrongKey)
	}
	sct, ok := ct.(*simCT)
	if !ok {
		return nil, fmt.Errorf("%w: ciphertext", ErrWrongKey)
	}
	return &simPartial{
		index: ssh.index,
		epoch: ssh.epoch,
		value: new(big.Int).Set(sct.value),
		size:  s.partSize(),
	}, nil
}

// Combine implements TDec: majority value among > t partials with distinct
// indices and a consistent epoch.
func (s *Sim) Combine(pk PublicKey, _ Ciphertext, parts []PartialDec) (*big.Int, error) {
	spk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	epoch := -1
	counts := map[string]int{}
	var best *big.Int
	bestCount := 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		sp, ok := p.(*simPartial)
		if !ok {
			return nil, fmt.Errorf("%w: partial", ErrWrongKey)
		}
		if epoch == -1 {
			epoch = sp.epoch
		} else if sp.epoch != epoch {
			return nil, ErrEpochMismatch
		}
		if seen[sp.index] {
			return nil, fmt.Errorf("%w: partial from %d", ErrDuplicateIndex, sp.index)
		}
		seen[sp.index] = true
		k := sp.value.String()     //yosolint:vartime sim backend models the TDec functionality for sweeps, not its leakage profile
		counts[k]++                //yosolint:vartime sim backend majority vote; not a protocol execution path
		if counts[k] > bestCount { //yosolint:vartime sim backend majority vote; not a protocol execution path
			bestCount = counts[k] //yosolint:vartime sim backend majority vote; not a protocol execution path
			best = sp.value
		}
	}
	if len(seen) < spk.t+1 {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewPartials, len(seen), spk.t+1)
	}
	return new(big.Int).Set(best), nil
}

// Reshare implements TKRes.
func (s *Sim) Reshare(pk PublicKey, sh KeyShare) ([]SubShare, error) {
	spk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	ssh, ok := sh.(*simShare)
	if !ok {
		return nil, fmt.Errorf("%w: key share", ErrWrongKey)
	}
	subs := make([]SubShare, spk.n)
	for j := 1; j <= spk.n; j++ {
		subs[j-1] = &simSub{from: ssh.index, to: j, epoch: ssh.epoch, size: s.subSize()}
	}
	return subs, nil
}

// RecoverShare implements TKRec.
func (s *Sim) RecoverShare(pk PublicKey, index int, subs []SubShare) (KeyShare, error) {
	spk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	froms := map[int]bool{}
	epoch := -1
	for _, sub := range subs {
		ss, ok := sub.(*simSub)
		if !ok {
			return nil, fmt.Errorf("%w: subshare", ErrWrongKey)
		}
		if ss.to != index {
			return nil, fmt.Errorf("%w: subshare addressed to %d, not %d", ErrMalformedMessage, ss.to, index)
		}
		if epoch == -1 {
			epoch = ss.epoch
		} else if ss.epoch != epoch {
			return nil, ErrEpochMismatch
		}
		if froms[ss.from] {
			return nil, fmt.Errorf("%w: subshare from %d", ErrDuplicateIndex, ss.from)
		}
		froms[ss.from] = true
	}
	if len(froms) < spk.t+1 {
		return nil, fmt.Errorf("%w: have %d subshares, need %d", ErrTooFewPartials, len(froms), spk.t+1)
	}
	return &simShare{index: index, epoch: epoch + 1, size: s.shareSize()}, nil
}

// SimPartialDecrypt implements the Simulator hook trivially: the ideal
// functionality can always open to the target.
func (s *Sim) SimPartialDecrypt(pk PublicKey, _ Ciphertext, target *big.Int,
	corrupt []KeyShare, honest []int) ([]PartialDec, error) {
	if _, err := s.pub(pk); err != nil {
		return nil, err
	}
	epoch := 0
	for _, c := range corrupt {
		epoch = c.Epoch()
	}
	sort.Ints(honest)
	out := make([]PartialDec, len(honest))
	for i, j := range honest {
		out[i] = &simPartial{index: j, epoch: epoch, value: new(big.Int).Set(target), size: s.partSize()}
	}
	return out, nil
}

func (s *Sim) pub(pk PublicKey) (*simPK, error) {
	spk, ok := pk.(*simPK)
	if !ok {
		return nil, fmt.Errorf("%w: public key", ErrWrongKey)
	}
	return spk, nil
}
