package tte

import (
	"errors"
	"math/big"
	"testing"

	"yosompc/internal/paillier"
)

func djScheme(t *testing.T, s int) *Threshold {
	t.Helper()
	sc, err := NewThresholdDJ(paillier.FixedTestKey(2), s)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestDJThresholdRoundTrip(t *testing.T) {
	for _, deg := range []int{2, 3} {
		sc := djScheme(t, deg)
		pk, shares, err := sc.KeyGen(5, 2)
		if err != nil {
			t.Fatal(err)
		}
		// A plaintext far beyond N — only representable at s ≥ 2.
		m := new(big.Int).Lsh(big.NewInt(1), 700)
		m.Add(m, big.NewInt(12345))
		if deg == 2 && m.Cmp(pk.MaxPlaintext()) >= 0 {
			t.Fatalf("test plaintext exceeds capacity at s=%d", deg)
		}
		ct, err := sc.Encrypt(pk, m, new(big.Int).Lsh(m, 1))
		if err != nil {
			t.Fatal(err)
		}
		got := decryptVia(t, sc, pk, shares, ct, []int{2, 4, 5})
		if got.Cmp(m) != 0 {
			t.Errorf("s=%d: decrypted %v, want %v", deg, got, m)
		}
	}
}

func TestDJThresholdCapacityGrows(t *testing.T) {
	s1 := djScheme(t, 1)
	s2 := djScheme(t, 2)
	pk1, _, err := s1.KeyGen(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pk2, _, err := s2.KeyGen(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// s=2 must accept bounds that s=1 rejects.
	big1 := new(big.Int).Lsh(pk1.MaxPlaintext(), 2) // ≈ N
	if _, err := s1.Encrypt(pk1, big.NewInt(1), big1); !errors.Is(err, ErrPlaintextTooBig) {
		t.Errorf("s=1 accepted bound ≈ N: %v", err)
	}
	if _, err := s2.Encrypt(pk2, big.NewInt(1), big1); err != nil {
		t.Errorf("s=2 rejected bound ≈ N: %v", err)
	}
	if pk2.CiphertextSize() <= pk1.CiphertextSize() {
		t.Error("s=2 ciphertexts not larger")
	}
}

func TestDJThresholdEvalAndReshare(t *testing.T) {
	sc := djScheme(t, 2)
	pk, shares, err := sc.KeyGen(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Large-coefficient linear combination that would overflow s=1.
	base := new(big.Int).Lsh(big.NewInt(1), 400)
	c1, err := sc.Encrypt(pk, base, base)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sc.Encrypt(pk, big.NewInt(99), big.NewInt(99))
	if err != nil {
		t.Fatal(err)
	}
	bigCoeff := new(big.Int).Lsh(big.NewInt(1), 300)
	sum, err := sc.Eval(pk, []Ciphertext{c1, c2}, []*big.Int{big.NewInt(3), bigCoeff})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mul(base, big.NewInt(3))
	want.Add(want, new(big.Int).Mul(bigCoeff, big.NewInt(99)))

	// Decrypt after one resharing epoch, exercising the Δ-divisor path
	// modulo N^s.
	next := reshareAll(t, sc, pk, shares, []int{1, 3})
	got := decryptVia(t, sc, pk, next, sum, []int{2, 3})
	if got.Cmp(want) != 0 {
		t.Errorf("eval+reshare decrypted %v, want %v", got, want)
	}
}

func TestDJSimPartialDecrypt(t *testing.T) {
	sc := djScheme(t, 2)
	pk, shares, err := sc.KeyGen(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := new(big.Int).Lsh(big.NewInt(7), 600)
	ct, err := sc.Encrypt(pk, m, new(big.Int).Lsh(m, 1))
	if err != nil {
		t.Fatal(err)
	}
	target := new(big.Int).Lsh(big.NewInt(3), 555)
	corrupt := []KeyShare{shares[0], shares[1]}
	simParts, err := sc.SimPartialDecrypt(pk, ct, target, corrupt, []int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	var parts []PartialDec
	for _, c := range corrupt {
		p, err := sc.PartialDecrypt(pk, c, ct)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	got, err := sc.Combine(pk, ct, append(parts, simParts...))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(target) != 0 {
		t.Errorf("retargeted combination = %v, want %v", got, target)
	}
}

func TestNewThresholdDJValidation(t *testing.T) {
	if _, err := NewThresholdDJ(paillier.FixedTestKey(2), 0); err == nil {
		t.Error("accepted s=0")
	}
	if _, err := NewThresholdDJ(nil, 2); err == nil {
		t.Error("accepted nil dealer")
	}
}
