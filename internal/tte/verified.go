package tte

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"yosompc/internal/modexp"
	"yosompc/internal/nizk"
)

// Shoup-style verification keys for publicly checkable partial
// decryptions: at key generation the dealer publishes a random square
// v ∈ Z*_{N^{s+1}} and per-party keys V_i = v^{Δ·d_i}. A partial
// decryption p = c^{2Δ·d_i} is certified by an equality-of-exponents
// proof between (c², p) and (v, V_i) with witness 2Δ·d_i.
//
// These are the *real* analogues of the attested proofs the protocol
// driver uses for its composite statements; they demonstrate that the
// partial-decryption leg of the paper's Re-encrypt/Decrypt relation is
// realizable with standard sigma protocols, including across resharing
// epochs (ReshareVerified / UpdateVerificationKeys keep the V_i in sync
// with the evolving shares).

// VerificationKeys certify partial decryptions of one key epoch.
type VerificationKeys struct {
	// V is the base, a random square in Z*_{N^{s+1}}.
	V *big.Int
	// Keys[i-1] is V^(Δ·d_i) for party i.
	Keys []*big.Int
	// Epoch is the key epoch these keys certify.
	Epoch int
	// WitnessBound bounds |Δ·d_i| for proof sizing.
	WitnessBound *big.Int
}

// Size returns the wire size of the published keys in bytes.
func (vk *VerificationKeys) Size() int {
	s := (vk.V.BitLen() + 7) / 8
	for _, k := range vk.Keys {
		s += (k.BitLen() + 7) / 8
	}
	return s
}

// ErrNoVerification marks operations that need a verified keygen.
var ErrNoVerification = errors.New("tte: verification keys unavailable")

// KeyGenVerified is KeyGen plus Shoup verification keys.
func (s *Threshold) KeyGenVerified(n, t int) (PublicKey, []KeyShare, *VerificationKeys, error) {
	pk, shares, err := s.KeyGen(n, t)
	if err != nil {
		return nil, nil, nil, err
	}
	tpk := pk.(*thresholdPK)
	// v = r² mod N^{s+1} for random r — a generator of the squares w.h.p.
	r, err := rand.Int(s.random, s.dj.Ns1)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tte: sampling verification base: %w", err)
	}
	v := new(big.Int).Mul(r, r)
	v.Mod(v, s.dj.Ns1)
	if v.Sign() == 0 {
		v = big.NewInt(4)
	}
	vk := &VerificationKeys{V: v, Keys: make([]*big.Int, n), Epoch: 0}
	// The witness bound must derive from public quantities only: the
	// verification keys travel to every verifier, and a bound equal to
	// 2Δ·N^s·m would hand out the secret m = p'q' (divide by the known
	// 2Δ·N^s) and with it N's factorization. m < N/4 for a safe-prime
	// modulus, so 2Δ·N^s·(N/4) over-bounds |Δ·d_i| and is sound: the
	// bound only sizes the proof's masking randomness, where bigger
	// still hides.
	nm := new(big.Int).Mul(s.dj.Ns, new(big.Int).Rsh(s.dealer.N, 2))
	vk.WitnessBound = new(big.Int).Mul(nm, tpk.delta)
	vk.WitnessBound.Lsh(vk.WitnessBound, 1)
	// All n keys share the base v: one fixed-base table amortized across
	// the whole committee instead of n independent exponentiations.
	exps := make([]*big.Int, n)
	for i, sh := range shares {
		exps[i] = new(big.Int).Mul(tpk.delta, sh.(*thresholdShare).d)
	}
	keys, err := modexp.ExpManySigned(v, s.dj.Ns1, exps)
	if err != nil {
		return nil, nil, nil, err
	}
	vk.Keys = keys
	return pk, shares, vk, nil
}

// ProvePartial produces the equality-of-exponents proof certifying that
// `part` is the correct partial decryption of ct under share sh.
func (s *Threshold) ProvePartial(pk PublicKey, sh KeyShare, ct Ciphertext,
	part PartialDec, vk *VerificationKeys) (*nizk.EqExpProof, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	tsh, ok := sh.(*thresholdShare)
	if !ok {
		return nil, fmt.Errorf("%w: key share", ErrWrongKey)
	}
	tct, ok := ct.(*thresholdCT)
	if !ok {
		return nil, fmt.Errorf("%w: ciphertext", ErrWrongKey)
	}
	tp, ok := part.(*thresholdPartial)
	if !ok {
		return nil, fmt.Errorf("%w: partial", ErrWrongKey)
	}
	if vk == nil || tsh.index > len(vk.Keys) {
		return nil, ErrNoVerification
	}
	if vk.Epoch != tsh.epoch {
		return nil, fmt.Errorf("%w: keys for epoch %d, share at %d", ErrEpochMismatch, vk.Epoch, tsh.epoch)
	}
	// part = (c²)^(Δ·d_i) and V_i = v^(Δ·d_i): witness w = Δ·d_i over
	// bases g1 = c², g2 = v.
	g1 := new(big.Int).Mul(tct.ct.C, tct.ct.C)
	g1.Mod(g1, s.dj.Ns1)
	w := new(big.Int).Mul(tpk.delta, tsh.d)
	return nizk.ProveEqExp(s.dj.Ns1, g1, vk.V, tp.v, vk.Keys[tsh.index-1], w, vk.WitnessBound)
}

// VerifyPartial checks a ProvePartial proof.
func (s *Threshold) VerifyPartial(pk PublicKey, index int, ct Ciphertext,
	part PartialDec, vk *VerificationKeys, proof *nizk.EqExpProof) bool {
	if _, err := s.pub(pk); err != nil {
		return false
	}
	tct, ok := ct.(*thresholdCT)
	if !ok {
		return false
	}
	tp, ok := part.(*thresholdPartial)
	if !ok || tp.index != index {
		return false
	}
	if vk == nil || index < 1 || index > len(vk.Keys) || vk.Epoch != tp.epoch {
		return false
	}
	g1 := new(big.Int).Mul(tct.ct.C, tct.ct.C)
	g1.Mod(g1, s.dj.Ns1)
	return nizk.VerifyEqExp(s.dj.Ns1, g1, vk.V, tp.v, vk.Keys[index-1], proof)
}

// VerifiedSubShares carries one party's resharing together with the
// verification pieces v^(Δ·g_i(j)) that let anyone derive the next
// epoch's verification keys.
type VerifiedSubShares struct {
	// Subs are the TKRes subshares.
	Subs []SubShare
	// Pieces[j-1] = v^(Δ·g_i(j)) for target j.
	Pieces []*big.Int
	// From is the resharing party.
	From int
}

// ReshareVerified is Reshare plus verification pieces.
func (s *Threshold) ReshareVerified(pk PublicKey, sh KeyShare, vk *VerificationKeys) (*VerifiedSubShares, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	subs, err := s.Reshare(pk, sh)
	if err != nil {
		return nil, err
	}
	// All n pieces share the base v: fixed-base fan-out, as in
	// KeyGenVerified.
	exps := make([]*big.Int, len(subs))
	for j, sub := range subs {
		exps[j] = new(big.Int).Mul(tpk.delta, sub.(*thresholdSub).v)
	}
	pieces, err := modexp.ExpManySigned(vk.V, s.dj.Ns1, exps)
	if err != nil {
		return nil, err
	}
	return &VerifiedSubShares{Subs: subs, Pieces: pieces, From: sh.Index()}, nil
}

// UpdateVerificationKeys derives the next epoch's verification keys from
// t+1 parties' verified resharings: the new share is
// d'_j = Σ Λ_i·g_i(j), so V'_j = Π Pieces_i[j]^(Λ_i) = v^(Δ·d'_j).
func (s *Threshold) UpdateVerificationKeys(pk PublicKey, vk *VerificationKeys,
	resharings []*VerifiedSubShares) (*VerificationKeys, error) {
	tpk, err := s.pub(pk)
	if err != nil {
		return nil, err
	}
	if len(resharings) < tpk.t+1 {
		return nil, fmt.Errorf("%w: have %d resharings, need %d", ErrTooFewPartials, len(resharings), tpk.t+1)
	}
	chosen := resharings[:tpk.t+1]
	froms := make([]int, len(chosen))
	for i, rs := range chosen {
		froms[i] = rs.From
	}
	lambdas, err := scaledLagrangeAtZero(tpk.delta, froms)
	if err != nil {
		return nil, err
	}
	next := &VerificationKeys{
		V:     vk.V,
		Keys:  make([]*big.Int, tpk.n),
		Epoch: vk.Epoch + 1,
	}
	// Witness magnitudes grow by ~Δ·n·2^statSecurity per epoch.
	growth := new(big.Int).Mul(tpk.delta, big.NewInt(int64(tpk.n)))
	growth.Lsh(growth, statSecurity+1)
	next.WitnessBound = new(big.Int).Mul(vk.WitnessBound, growth)
	// V'_j = Π Pieces_i[j]^(Λ_i): one Straus multi-exponentiation per
	// target party, sharing the squaring chain across the t+1 pieces.
	for j := 0; j < tpk.n; j++ {
		bases := make([]*big.Int, len(chosen))
		for i, rs := range chosen {
			if j >= len(rs.Pieces) {
				return nil, fmt.Errorf("%w: resharing from %d missing piece %d", ErrMalformedMessage, rs.From, j)
			}
			bases[i] = rs.Pieces[j]
		}
		acc, err := modexp.MultiExp(s.dj.Ns1, bases, lambdas)
		if err != nil {
			return nil, err
		}
		next.Keys[j] = acc
	}
	return next, nil
}
