// Package tte implements the linearly homomorphic key-rerandomizable
// threshold encryption scheme of the paper's Section 4.1, with the
// eight-algorithm API (TKGen, TEnc, TPDec, TDec, TEval, TKRes, TKRec,
// SimTPDec).
//
// Two interchangeable backends are provided:
//
//   - Threshold: real threshold Paillier following Damgård–Jurik/Shoup.
//     The decryption exponent d (d ≡ 0 mod m, d ≡ 1 mod N for safe-prime
//     modulus N with m = p'q') is Shamir-shared; partial decryptions are
//     c^(2Δ·d_i) with Δ = n!, and combination uses Δ-scaled integer
//     Lagrange coefficients so that no modular inversion modulo the
//     secret group order is ever needed. Key resharing (TKRes/TKRec)
//     works over the integers with statistical masking; each resharing
//     epoch multiplies the effective secret by Δ, which TDec divides
//     out (plaintexts are recovered as L(c')·(4Δ²·Δ^epoch)⁻¹ mod N).
//
//   - Sim: an ideal-functionality backend with the same message shapes
//     and a byte-size model matching a real deployment's parameters.
//     It exists so that communication sweeps can run at committee sizes
//     (thousands of roles) where big-integer crypto would dominate
//     wall-clock without changing any measured byte count.
//
// Plaintexts are non-negative integers. Every ciphertext carries a public
// *plaintext magnitude bound* maintained through homomorphic evaluation;
// the MPC layer works over F_p embedded in Z_N and relies on bounds staying
// below N so that integer arithmetic never wraps modulo N (wrapping would
// corrupt values mod p). TEval accepts only non-negative coefficients for
// the same reason; the protocol encodes subtraction as multiplication by
// (p - x), keeping magnitudes polynomial in p.
package tte

import (
	"errors"
	"math/big"
)

// Ciphertext is an opaque threshold-encryption ciphertext.
type Ciphertext interface {
	// Bound returns a public upper bound on the integer plaintext.
	Bound() *big.Int
	// Size returns the ciphertext's size in bytes on the wire.
	Size() int
}

// KeyShare is one party's share of the threshold decryption key.
type KeyShare interface {
	// Index returns the party index in 1..n.
	Index() int
	// Epoch returns how many resharings this share has been through.
	Epoch() int
	// Size returns the share's size in bytes on the wire.
	Size() int
}

// PartialDec is one party's partial decryption of a ciphertext.
type PartialDec interface {
	// Index returns the producing party's index.
	Index() int
	// Epoch returns the key epoch the partial was produced under.
	Epoch() int
	// Size returns the partial's size in bytes on the wire.
	Size() int
}

// SubShare is one resharing message: party i's contribution to party j's
// next-epoch key share.
type SubShare interface {
	// From returns the resharing party's index.
	From() int
	// To returns the receiving party's index.
	To() int
	// Size returns the subshare's size in bytes on the wire.
	Size() int
}

// PublicKey is the threshold public key together with the committee
// parameters it was generated for.
type PublicKey interface {
	// N returns the committee size the key was dealt to.
	N() int
	// T returns the reconstruction threshold: any T+1 partial
	// decryptions suffice, any T reveal nothing.
	T() int
	// CiphertextSize returns the wire size of a fresh ciphertext.
	CiphertextSize() int
	// MaxPlaintext returns the largest plaintext bound TEval accepts.
	MaxPlaintext() *big.Int
}

// Scheme is the paper's TE API. Implementations must be safe for
// concurrent use after key generation.
type Scheme interface {
	// Name identifies the backend ("threshold-paillier" or "sim").
	Name() string

	// KeyGen (TKGen) deals a key for an n-party committee with threshold t.
	KeyGen(n, t int) (PublicKey, []KeyShare, error)

	// Encrypt (TEnc) encrypts a non-negative integer m with bound ≥ m.
	// The bound becomes part of the ciphertext's public metadata.
	Encrypt(pk PublicKey, m, bound *big.Int) (Ciphertext, error)

	// Eval (TEval) returns a ciphertext of Σ coeffs[i]·m_i. Coefficients
	// must be non-negative; the result's bound is Σ coeffs[i]·bound_i.
	Eval(pk PublicKey, cts []Ciphertext, coeffs []*big.Int) (Ciphertext, error)

	// PartialDecrypt (TPDec) produces party sh's partial decryption of ct.
	PartialDecrypt(pk PublicKey, sh KeyShare, ct Ciphertext) (PartialDec, error)

	// Combine (TDec) recovers the integer plaintext from > t partial
	// decryptions. The caller reduces modulo the MPC field if needed.
	Combine(pk PublicKey, ct Ciphertext, parts []PartialDec) (*big.Int, error)

	// Reshare (TKRes) produces the n resharing messages of party sh,
	// one per next-epoch party.
	Reshare(pk PublicKey, sh KeyShare) ([]SubShare, error)

	// RecoverShare (TKRec) assembles party index's next-epoch share from
	// > t subshares addressed to it.
	RecoverShare(pk PublicKey, index int, subs []SubShare) (KeyShare, error)
}

// BatchEncrypter is the optional batched-encryption interface: backends
// that can amortize per-ciphertext work (nonce exponentiations over the
// worker pool, shared key state) implement it. The contract matches n
// independent Encrypt calls exactly — same validation, same ciphertext
// distribution — and the output must be independent of the worker
// count. All messages share one bound.
type BatchEncrypter interface {
	// EncryptMany encrypts every ms[i] with the shared bound using at
	// most workers goroutines (values < 1 mean the default pool size).
	EncryptMany(pk PublicKey, ms []*big.Int, bound *big.Int, workers int) ([]Ciphertext, error)
}

// EncryptAll encrypts a batch through the scheme's BatchEncrypter when
// it has one, falling back to sequential Encrypt calls otherwise.
// Drivers call this instead of type-asserting at every site.
func EncryptAll(s Scheme, pk PublicKey, ms []*big.Int, bound *big.Int, workers int) ([]Ciphertext, error) {
	if be, ok := s.(BatchEncrypter); ok {
		return be.EncryptMany(pk, ms, bound, workers)
	}
	out := make([]Ciphertext, len(ms))
	for i, m := range ms {
		ct, err := s.Encrypt(pk, m, bound)
		if err != nil {
			return nil, err
		}
		out[i] = ct
	}
	return out, nil
}

// Simulator is the partial-decryption simulatability hook (SimTPDec).
// Only backends holding dealer secrets implement it; it exists to make the
// paper's Definition 2 testable, not for protocol execution.
type Simulator interface {
	// SimPartialDecrypt produces partial decryptions for the honest
	// indices that, combined with partial decryptions derived from the
	// given corrupt shares, make Combine output target.
	SimPartialDecrypt(pk PublicKey, ct Ciphertext, target *big.Int,
		corrupt []KeyShare, honest []int) ([]PartialDec, error)
}

// Errors shared by backends.
var (
	ErrTooFewPartials   = errors.New("tte: not enough partial decryptions")
	ErrNegativeCoeff    = errors.New("tte: negative coefficient in Eval")
	ErrPlaintextTooBig  = errors.New("tte: plaintext bound exceeds key capacity")
	ErrWrongKey         = errors.New("tte: object belongs to a different key or backend")
	ErrEpochMismatch    = errors.New("tte: mixed key epochs")
	ErrDuplicateIndex   = errors.New("tte: duplicate party index")
	ErrMalformedMessage = errors.New("tte: malformed message")
)
