package tte

import (
	"math/big"
	"sync"
	"testing"

	"yosompc/internal/paillier"
)

// Differential tests pinning the modexp-engine hot paths (PartialDecrypt,
// Combine, Δ^epoch ladders) bit-for-bit against the retained naive
// references. "Equal" below always means big.Int.Cmp == 0 on canonical
// residues, which for engine outputs is the same as byte equality.

func engineScheme(t *testing.T) (*Threshold, PublicKey, []KeyShare) {
	t.Helper()
	s, err := NewThreshold(paillier.FixedTestKey(0))
	if err != nil {
		t.Fatalf("NewThreshold: %v", err)
	}
	pk, shares, err := s.KeyGen(5, 2)
	if err != nil {
		t.Fatalf("KeyGen: %v", err)
	}
	return s, pk, shares
}

func TestPartialDecryptEngineMatchesNaive(t *testing.T) {
	s, pk, shares := engineScheme(t)
	ct, err := s.Encrypt(pk, big.NewInt(424242), big.NewInt(1<<20))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		for _, sh := range shares {
			eng, err := s.PartialDecrypt(pk, sh, ct)
			if err != nil {
				t.Fatalf("epoch %d PartialDecrypt(%d): %v", epoch, sh.Index(), err)
			}
			ref, err := s.PartialDecryptNaive(pk, sh, ct)
			if err != nil {
				t.Fatalf("epoch %d PartialDecryptNaive(%d): %v", epoch, sh.Index(), err)
			}
			ev, rv := eng.(*thresholdPartial).v, ref.(*thresholdPartial).v
			if ev.Cmp(rv) != 0 {
				t.Fatalf("epoch %d share %d: engine partial %v != naive %v", epoch, sh.Index(), ev, rv)
			}
		}
		// Epoch 1: reshared shares go negative over the integers, which
		// exercises the CRT path's negative-exponent reduction.
		shares = reshareAll(t, s, pk, shares, []int{1, 2, 3})
	}
}

func TestCombineEngineMatchesNaive(t *testing.T) {
	s, pk, shares := engineScheme(t)
	want := big.NewInt(987654321)
	ct, err := s.Encrypt(pk, want, big.NewInt(1<<31))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		var parts []PartialDec
		for _, sh := range shares[:3] {
			p, err := s.PartialDecrypt(pk, sh, ct)
			if err != nil {
				t.Fatalf("PartialDecrypt: %v", err)
			}
			parts = append(parts, p)
		}
		eng, err := s.Combine(pk, ct, parts)
		if err != nil {
			t.Fatalf("epoch %d Combine: %v", epoch, err)
		}
		ref, err := s.CombineNaive(pk, ct, parts)
		if err != nil {
			t.Fatalf("epoch %d CombineNaive: %v", epoch, err)
		}
		if eng.Cmp(ref) != 0 {
			t.Fatalf("epoch %d: engine Combine %v != naive %v", epoch, eng, ref)
		}
		if eng.Cmp(want) != 0 {
			t.Fatalf("epoch %d: Combine %v, want %v", epoch, eng, want)
		}
		shares = reshareAll(t, s, pk, shares, []int{1, 3, 5})
	}
}

func TestDeltaPowerEngineMatchesNaive(t *testing.T) {
	s, pk, _ := engineScheme(t)
	tpk := pk.(*thresholdPK)
	// Non-monotone epochs: the ladder must serve arbitrary revisit order.
	for _, epoch := range []int{0, 3, 1, 7, 2, 7} {
		eng, err := s.deltaPower(tpk, epoch, true)
		if err != nil {
			t.Fatalf("deltaPower(engine, %d): %v", epoch, err)
		}
		ref, err := s.deltaPower(tpk, epoch, false)
		if err != nil {
			t.Fatalf("deltaPower(naive, %d): %v", epoch, err)
		}
		if eng.Cmp(ref) != 0 {
			t.Fatalf("epoch %d: ladder Δ^e %v != naive %v", epoch, eng, ref)
		}
	}
}

func TestThresholdEncryptManyRoundTrip(t *testing.T) {
	s, pk, shares := engineScheme(t)
	bound := big.NewInt(1 << 16)
	ms := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(65535), big.NewInt(31337)}
	cts, err := s.EncryptMany(pk, ms, bound, 3)
	if err != nil {
		t.Fatalf("EncryptMany: %v", err)
	}
	if len(cts) != len(ms) {
		t.Fatalf("EncryptMany returned %d ciphertexts, want %d", len(cts), len(ms))
	}
	for i, ct := range cts {
		got := decryptVia(t, s, pk, shares, ct, []int{1, 2, 4})
		if got.Cmp(ms[i]) != 0 {
			t.Fatalf("ciphertext %d decrypts to %v, want %v", i, got, ms[i])
		}
	}
}

func TestThresholdEncryptManyValidation(t *testing.T) {
	s, pk, _ := engineScheme(t)
	bound := big.NewInt(100)
	if _, err := s.EncryptMany(pk, []*big.Int{big.NewInt(5)}, nil, 1); err == nil {
		t.Fatal("EncryptMany accepted a nil bound")
	}
	if _, err := s.EncryptMany(pk, []*big.Int{big.NewInt(101)}, bound, 1); err == nil {
		t.Fatal("EncryptMany accepted m > bound")
	}
	if _, err := s.EncryptMany(pk, []*big.Int{big.NewInt(-1)}, bound, 1); err == nil {
		t.Fatal("EncryptMany accepted a negative plaintext")
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 4096)
	if _, err := s.EncryptMany(pk, []*big.Int{big.NewInt(5)}, huge, 1); err == nil {
		t.Fatal("EncryptMany accepted a bound beyond key capacity")
	}
}

// TestThresholdEngineHammer drives the cached hot paths from many
// goroutines at once; run with -race it witnesses that the engine's
// table/ladder caches stay safe under the scheme-level call pattern.
func TestThresholdEngineHammer(t *testing.T) {
	s, pk, shares := engineScheme(t)
	ct, err := s.Encrypt(pk, big.NewInt(7777), big.NewInt(1<<20))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				var parts []PartialDec
				for _, sh := range shares[:3] {
					p, err := s.PartialDecrypt(pk, sh, ct)
					if err != nil {
						errCh <- err
						return
					}
					parts = append(parts, p)
				}
				v, err := s.Combine(pk, ct, parts)
				if err != nil {
					errCh <- err
					return
				}
				if v.Int64() != 7777 {
					errCh <- errWrongOpen
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("hammer: %v", err)
	}
}

var errWrongOpen = &wrongOpenError{}

type wrongOpenError struct{}

func (*wrongOpenError) Error() string { return "combine opened to the wrong value" }
