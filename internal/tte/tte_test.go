package tte

import (
	"errors"
	"math/big"
	"testing"

	"yosompc/internal/paillier"
)

// backends under test; both must satisfy Scheme and Simulator identically.
func testBackends(t *testing.T) map[string]Scheme {
	t.Helper()
	real, err := NewThreshold(paillier.FixedTestKey(0))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Scheme{
		"threshold-paillier": real,
		"sim":                NewSim(512),
	}
}

func decryptVia(t *testing.T, s Scheme, pk PublicKey, shares []KeyShare, ct Ciphertext, idx []int) *big.Int {
	t.Helper()
	parts := make([]PartialDec, 0, len(idx))
	for _, i := range idx {
		p, err := s.PartialDecrypt(pk, shares[i-1], ct)
		if err != nil {
			t.Fatalf("PartialDecrypt(%d): %v", i, err)
		}
		parts = append(parts, p)
	}
	m, err := s.Combine(pk, ct, parts)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	return m
}

func TestEncryptThresholdDecrypt(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(5, 2)
			if err != nil {
				t.Fatal(err)
			}
			m := big.NewInt(424242)
			ct, err := s.Encrypt(pk, m, big.NewInt(1_000_000))
			if err != nil {
				t.Fatal(err)
			}
			got := decryptVia(t, s, pk, shares, ct, []int{1, 2, 3})
			if got.Cmp(m) != 0 {
				t.Errorf("decrypted %v, want %v", got, m)
			}
		})
	}
}

func TestDecryptWithArbitrarySubsets(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(6, 2)
			if err != nil {
				t.Fatal(err)
			}
			m := big.NewInt(777)
			ct, err := s.Encrypt(pk, m, big.NewInt(1000))
			if err != nil {
				t.Fatal(err)
			}
			for _, subset := range [][]int{{1, 2, 3}, {4, 5, 6}, {1, 3, 6}, {2, 4, 5, 6}} {
				if got := decryptVia(t, s, pk, shares, ct, subset); got.Cmp(m) != 0 {
					t.Errorf("subset %v: decrypted %v, want %v", subset, got, m)
				}
			}
		})
	}
}

func TestCombineTooFewPartials(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(5, 2)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := s.Encrypt(pk, big.NewInt(1), big.NewInt(1))
			if err != nil {
				t.Fatal(err)
			}
			var parts []PartialDec
			for _, i := range []int{1, 2} { // only t partials
				p, err := s.PartialDecrypt(pk, shares[i-1], ct)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, p)
			}
			if _, err := s.Combine(pk, ct, parts); !errors.Is(err, ErrTooFewPartials) {
				t.Errorf("Combine with t partials: err = %v, want ErrTooFewPartials", err)
			}
		})
	}
}

func TestCombineDuplicateIndex(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(5, 1)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := s.Encrypt(pk, big.NewInt(1), big.NewInt(1))
			if err != nil {
				t.Fatal(err)
			}
			p, err := s.PartialDecrypt(pk, shares[0], ct)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Combine(pk, ct, []PartialDec{p, p}); !errors.Is(err, ErrDuplicateIndex) {
				t.Errorf("err = %v, want ErrDuplicateIndex", err)
			}
		})
	}
}

func TestEvalLinearCombination(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			b := big.NewInt(10_000)
			c1, err := s.Encrypt(pk, big.NewInt(100), b)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := s.Encrypt(pk, big.NewInt(7), b)
			if err != nil {
				t.Fatal(err)
			}
			// 3·100 + 5·7 = 335
			sum, err := s.Eval(pk, []Ciphertext{c1, c2}, []*big.Int{big.NewInt(3), big.NewInt(5)})
			if err != nil {
				t.Fatal(err)
			}
			if got := decryptVia(t, s, pk, shares, sum, []int{1, 2}); got.Cmp(big.NewInt(335)) != 0 {
				t.Errorf("Eval result decrypts to %v, want 335", got)
			}
			// Bound must accumulate: 3·10000 + 5·10000 = 80000.
			if sum.Bound().Cmp(big.NewInt(80_000)) != 0 {
				t.Errorf("bound = %v, want 80000", sum.Bound())
			}
		})
	}
}

func TestEvalZeroCoefficient(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			c1, err := s.Encrypt(pk, big.NewInt(9), big.NewInt(9))
			if err != nil {
				t.Fatal(err)
			}
			c2, err := s.Encrypt(pk, big.NewInt(100), big.NewInt(100))
			if err != nil {
				t.Fatal(err)
			}
			out, err := s.Eval(pk, []Ciphertext{c1, c2}, []*big.Int{big.NewInt(1), big.NewInt(0)})
			if err != nil {
				t.Fatal(err)
			}
			if got := decryptVia(t, s, pk, shares, out, []int{1, 2}); got.Cmp(big.NewInt(9)) != 0 {
				t.Errorf("decrypts to %v, want 9", got)
			}
		})
	}
}

func TestEvalRejectsNegativeCoefficient(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, _, err := s.KeyGen(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.Encrypt(pk, big.NewInt(1), big.NewInt(1))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Eval(pk, []Ciphertext{c}, []*big.Int{big.NewInt(-1)}); !errors.Is(err, ErrNegativeCoeff) {
				t.Errorf("err = %v, want ErrNegativeCoeff", err)
			}
		})
	}
}

func TestEvalBoundOverflow(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, _, err := s.KeyGen(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			nearMax := new(big.Int).Sub(pk.MaxPlaintext(), big.NewInt(1))
			c, err := s.Encrypt(pk, big.NewInt(1), nearMax)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Eval(pk, []Ciphertext{c, c}, []*big.Int{big.NewInt(1), big.NewInt(1)}); !errors.Is(err, ErrPlaintextTooBig) {
				t.Errorf("err = %v, want ErrPlaintextTooBig", err)
			}
		})
	}
}

func TestEncryptRejectsBadInputs(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, _, err := s.KeyGen(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Encrypt(pk, big.NewInt(-1), big.NewInt(10)); err == nil {
				t.Error("accepted negative plaintext")
			}
			if _, err := s.Encrypt(pk, big.NewInt(11), big.NewInt(10)); err == nil {
				t.Error("accepted plaintext above bound")
			}
			tooBig := new(big.Int).Lsh(pk.MaxPlaintext(), 1)
			if _, err := s.Encrypt(pk, big.NewInt(1), tooBig); !errors.Is(err, ErrPlaintextTooBig) {
				t.Errorf("err = %v, want ErrPlaintextTooBig", err)
			}
		})
	}
}

func TestReshareOneEpoch(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			const n, tt = 5, 2
			pk, shares, err := s.KeyGen(n, tt)
			if err != nil {
				t.Fatal(err)
			}
			m := big.NewInt(31337)
			ct, err := s.Encrypt(pk, m, big.NewInt(100_000))
			if err != nil {
				t.Fatal(err)
			}
			next := reshareAll(t, s, pk, shares, []int{1, 3, 5})
			for _, sh := range next {
				if sh.Epoch() != 1 {
					t.Errorf("share %d epoch = %d, want 1", sh.Index(), sh.Epoch())
				}
			}
			if got := decryptVia(t, s, pk, next, ct, []int{2, 3, 4}); got.Cmp(m) != 0 {
				t.Errorf("after resharing decrypted %v, want %v", got, m)
			}
		})
	}
}

func TestReshareTwoEpochs(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			const n, tt = 4, 1
			pk, shares, err := s.KeyGen(n, tt)
			if err != nil {
				t.Fatal(err)
			}
			m := big.NewInt(5)
			ct, err := s.Encrypt(pk, m, big.NewInt(5))
			if err != nil {
				t.Fatal(err)
			}
			e1 := reshareAll(t, s, pk, shares, []int{1, 2})
			e2 := reshareAll(t, s, pk, e1, []int{3, 4})
			if got := decryptVia(t, s, pk, e2, ct, []int{1, 4}); got.Cmp(m) != 0 {
				t.Errorf("after two resharings decrypted %v, want %v", got, m)
			}
		})
	}
}

// reshareAll has the parties in `resharers` run TKRes and every party run
// TKRec on the subshares addressed to it.
func reshareAll(t *testing.T, s Scheme, pk PublicKey, shares []KeyShare, resharers []int) []KeyShare {
	t.Helper()
	byTarget := make(map[int][]SubShare)
	for _, i := range resharers {
		subs, err := s.Reshare(pk, shares[i-1])
		if err != nil {
			t.Fatalf("Reshare(%d): %v", i, err)
		}
		for _, sub := range subs {
			byTarget[sub.To()] = append(byTarget[sub.To()], sub)
		}
	}
	next := make([]KeyShare, len(shares))
	for j := 1; j <= len(shares); j++ {
		sh, err := s.RecoverShare(pk, j, byTarget[j])
		if err != nil {
			t.Fatalf("RecoverShare(%d): %v", j, err)
		}
		next[j-1] = sh
	}
	return next
}

func TestRecoverShareValidation(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			subs1, err := s.Reshare(pk, shares[0])
			if err != nil {
				t.Fatal(err)
			}
			// Wrong target.
			if _, err := s.RecoverShare(pk, 2, []SubShare{subs1[0]}); err == nil {
				t.Error("accepted subshare addressed elsewhere")
			}
			// Too few.
			if _, err := s.RecoverShare(pk, 1, []SubShare{subs1[0]}); !errors.Is(err, ErrTooFewPartials) {
				t.Errorf("err = %v, want ErrTooFewPartials", err)
			}
			// Duplicate from.
			if _, err := s.RecoverShare(pk, 1, []SubShare{subs1[0], subs1[0]}); !errors.Is(err, ErrDuplicateIndex) {
				t.Errorf("err = %v, want ErrDuplicateIndex", err)
			}
		})
	}
}

func TestEpochMismatchDetected(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			next := reshareAll(t, s, pk, shares, []int{1, 2})
			ct, err := s.Encrypt(pk, big.NewInt(3), big.NewInt(3))
			if err != nil {
				t.Fatal(err)
			}
			p0, err := s.PartialDecrypt(pk, shares[0], ct)
			if err != nil {
				t.Fatal(err)
			}
			p1, err := s.PartialDecrypt(pk, next[1], ct)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Combine(pk, ct, []PartialDec{p0, p1}); !errors.Is(err, ErrEpochMismatch) {
				t.Errorf("err = %v, want ErrEpochMismatch", err)
			}
		})
	}
}

func TestSimPartialDecryptRetargets(t *testing.T) {
	for name, s := range testBackends(t) {
		sim, ok := s.(Simulator)
		if !ok {
			t.Errorf("%s does not implement Simulator", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			const n, tt = 5, 2
			pk, shares, err := s.KeyGen(n, tt)
			if err != nil {
				t.Fatal(err)
			}
			// The ciphertext actually encrypts 1000 ...
			ct, err := s.Encrypt(pk, big.NewInt(1000), big.NewInt(10_000))
			if err != nil {
				t.Fatal(err)
			}
			// ... but the simulator must open it as 55, given two corrupt
			// shares (parties 1, 2) and honest indices 3, 4, 5.
			target := big.NewInt(55)
			corrupt := []KeyShare{shares[0], shares[1]}
			simParts, err := sim.SimPartialDecrypt(pk, ct, target, corrupt, []int{3, 4, 5})
			if err != nil {
				t.Fatal(err)
			}
			// Corrupt parties decrypt honestly with their real shares.
			var parts []PartialDec
			for _, c := range corrupt {
				p, err := s.PartialDecrypt(pk, c, ct)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, p)
			}
			parts = append(parts, simParts...)
			got, err := s.Combine(pk, ct, parts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(target) != 0 {
				t.Errorf("simulated combination = %v, want %v", got, target)
			}
		})
	}
}

func TestSimPartialDecryptFewerCorrupt(t *testing.T) {
	// With fewer than t corrupt shares the simulator pads with free points.
	for name, s := range testBackends(t) {
		sim := s.(Simulator)
		t.Run(name, func(t *testing.T) {
			const n, tt = 5, 2
			pk, shares, err := s.KeyGen(n, tt)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := s.Encrypt(pk, big.NewInt(123), big.NewInt(1000))
			if err != nil {
				t.Fatal(err)
			}
			target := big.NewInt(99)
			corrupt := []KeyShare{shares[0]} // 1 < t
			simParts, err := sim.SimPartialDecrypt(pk, ct, target, corrupt, []int{2, 3, 4, 5})
			if err != nil {
				t.Fatal(err)
			}
			p1, err := s.PartialDecrypt(pk, shares[0], ct)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Combine(pk, ct, append(simParts, p1))
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(target) != 0 {
				t.Errorf("simulated combination = %v, want %v", got, target)
			}
		})
	}
}

func TestSizesArePositive(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			pk, shares, err := s.KeyGen(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			if pk.CiphertextSize() <= 0 {
				t.Error("non-positive ciphertext size")
			}
			ct, err := s.Encrypt(pk, big.NewInt(1), big.NewInt(1))
			if err != nil {
				t.Fatal(err)
			}
			if ct.Size() <= 0 {
				t.Error("non-positive ct size")
			}
			if shares[0].Size() <= 0 {
				t.Error("non-positive share size")
			}
			p, err := s.PartialDecrypt(pk, shares[0], ct)
			if err != nil {
				t.Fatal(err)
			}
			if p.Size() <= 0 {
				t.Error("non-positive partial size")
			}
			subs, err := s.Reshare(pk, shares[0])
			if err != nil {
				t.Fatal(err)
			}
			if subs[0].Size() <= 0 {
				t.Error("non-positive subshare size")
			}
		})
	}
}

func TestKeyGenValidation(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			for _, c := range []struct{ n, t int }{{0, 0}, {3, 3}, {3, -1}} {
				if _, _, err := s.KeyGen(c.n, c.t); err == nil {
					t.Errorf("KeyGen(%d,%d) accepted", c.n, c.t)
				}
			}
		})
	}
}

func TestNewThresholdRequiresSafePrimeKey(t *testing.T) {
	if _, err := NewThreshold(nil); err == nil {
		t.Error("accepted nil dealer key")
	}
	plain := &paillier.PrivateKey{} // no M
	if _, err := NewThreshold(plain); err == nil {
		t.Error("accepted non-safe-prime dealer key")
	}
}

func TestFactorial(t *testing.T) {
	cases := map[int]int64{0: 1, 1: 1, 5: 120, 10: 3628800}
	for n, want := range cases {
		if got := factorial(n); got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("%d! = %v, want %d", n, got, want)
		}
	}
}

func TestScaledLagrangeExactness(t *testing.T) {
	// Reconstruction identity: for f(x)=7+3x+x², Σ Λ_i·f(x_i) = Δ·f(0).
	delta := factorial(6)
	xs := []int{2, 4, 5}
	f := func(x int64) *big.Int { return big.NewInt(7 + 3*x + x*x) }
	lambdas, err := scaledLagrangeAtZero(delta, xs)
	if err != nil {
		t.Fatal(err)
	}
	acc := new(big.Int)
	for i, x := range xs {
		acc.Add(acc, new(big.Int).Mul(lambdas[i], f(int64(x))))
	}
	want := new(big.Int).Mul(delta, f(0))
	if acc.Cmp(want) != 0 {
		t.Errorf("Σ Λ_i f(x_i) = %v, want Δ·f(0) = %v", acc, want)
	}
}

func TestScaledLagrangeDuplicate(t *testing.T) {
	if _, err := scaledLagrangeAtZero(factorial(4), []int{1, 1}); !errors.Is(err, ErrDuplicateIndex) {
		t.Errorf("err = %v, want ErrDuplicateIndex", err)
	}
}

func BenchmarkThresholdDecrypt5of2(b *testing.B) {
	s, err := NewThreshold(paillier.FixedTestKey(0))
	if err != nil {
		b.Fatal(err)
	}
	pk, shares, err := s.KeyGen(5, 2)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := s.Encrypt(pk, big.NewInt(42), big.NewInt(100))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := make([]PartialDec, 3)
		for j := 0; j < 3; j++ {
			p, err := s.PartialDecrypt(pk, shares[j], ct)
			if err != nil {
				b.Fatal(err)
			}
			parts[j] = p
		}
		if _, err := s.Combine(pk, ct, parts); err != nil {
			b.Fatal(err)
		}
	}
}
