package costmodel

import (
	"testing"

	"yosompc/internal/baseline"
	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/core"
	"yosompc/internal/field"
	"yosompc/internal/pke"
	"yosompc/internal/tte"
)

const modelBits = 512

func coreMeasured(t *testing.T, n, tt, k int, circ *circuit.Circuit, in map[int][]field.Element) comm.Report {
	t.Helper()
	params := core.Params{N: n, T: tt, K: k, TE: tte.NewSim(modelBits), PKE: pke.NewSim()}
	proto, err := core.New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return res.Report
}

func baselineMeasured(t *testing.T, n, tt int, circ *circuit.Circuit, in map[int][]field.Element) comm.Report {
	t.Helper()
	params := baseline.Params{N: n, T: tt, TE: tte.NewSim(modelBits), PKE: pke.NewSim()}
	proto, err := baseline.New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return res.Report
}

func inputsFor(c *circuit.Circuit) map[int][]field.Element {
	in := map[int][]field.Element{}
	for _, client := range c.Clients() {
		vals := make([]field.Element, c.InputCount(client))
		for i := range vals {
			vals[i] = field.New(uint64(client*10 + i + 1))
		}
		in[client] = vals
	}
	return in
}

// TestCoreModelMatchesMeasured validates the closed-form model against the
// instrumented driver byte-for-byte across circuit shapes and parameters —
// this is what licenses the Table-1-scale projections.
func TestCoreModelMatchesMeasured(t *testing.T) {
	mk := func(f func() (*circuit.Circuit, error)) *circuit.Circuit {
		c, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cases := []struct {
		name    string
		circ    *circuit.Circuit
		n, t, k int
	}{
		{"inner-product", mk(func() (*circuit.Circuit, error) { return circuit.InnerProduct(4) }), 8, 2, 2},
		{"poly-eval", mk(func() (*circuit.Circuit, error) { return circuit.PolyEval(3) }), 10, 2, 3},
		{"wide", mk(func() (*circuit.Circuit, error) { return circuit.WideMul(8, 2) }), 12, 3, 3},
		{"stats", mk(func() (*circuit.Circuit, error) { return circuit.Statistics(4) }), 9, 2, 2},
		{"k1", mk(func() (*circuit.Circuit, error) { return circuit.InnerProduct(3) }), 6, 1, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := inputsFor(c.circ)
			measured := coreMeasured(t, c.n, c.t, c.k, c.circ, in)
			predicted := Core(c.n, c.t, c.k, ShapeOf(c.circ, c.k), SimSizes(modelBits))
			if got, want := measured.Phase(comm.PhaseSetup), predicted.Setup; got != want {
				t.Errorf("setup: measured %d, model %d", got, want)
			}
			if got, want := measured.Phase(comm.PhaseOffline), predicted.Offline; got != want {
				t.Errorf("offline: measured %d, model %d", got, want)
			}
			if got, want := measured.Phase(comm.PhaseOnline), predicted.Online; got != want {
				t.Errorf("online: measured %d, model %d", got, want)
			}
		})
	}
}

// TestBaselineModelMatchesMeasured does the same for the CDN baseline.
func TestBaselineModelMatchesMeasured(t *testing.T) {
	mk := func(f func() (*circuit.Circuit, error)) *circuit.Circuit {
		c, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cases := []struct {
		name string
		circ *circuit.Circuit
		n, t int
	}{
		{"inner-product", mk(func() (*circuit.Circuit, error) { return circuit.InnerProduct(4) }), 5, 2},
		{"poly-eval", mk(func() (*circuit.Circuit, error) { return circuit.PolyEval(3) }), 7, 3},
		{"wide", mk(func() (*circuit.Circuit, error) { return circuit.WideMul(6, 2) }), 9, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := inputsFor(c.circ)
			measured := baselineMeasured(t, c.n, c.t, c.circ, in)
			predicted := Baseline(c.n, c.t, ShapeOf(c.circ, 1), SimSizes(modelBits))
			if got, want := measured.Phase(comm.PhaseSetup), predicted.Setup; got != want {
				t.Errorf("setup: measured %d, model %d", got, want)
			}
			if got, want := measured.Phase(comm.PhaseOffline), predicted.Offline; got != want {
				t.Errorf("offline: measured %d, model %d", got, want)
			}
			if got, want := measured.Phase(comm.PhaseOnline), predicted.Online; got != want {
				t.Errorf("online: measured %d, model %d", got, want)
			}
		})
	}
}

func TestShapeOf(t *testing.T) {
	c, err := circuit.WideMul(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := ShapeOf(c, 3)
	if s.Muls != 16 || s.Depth != 2 {
		t.Errorf("shape = %+v", s)
	}
	if s.Batches() != 6 { // ceil(8/3) = 3 per layer
		t.Errorf("batches = %d, want 6", s.Batches())
	}
	if s.Inputs != 8 || s.InputClients != 2 {
		t.Errorf("inputs = %d clients = %d", s.Inputs, s.InputClients)
	}
}

func TestPerLayerMulsApprox(t *testing.T) {
	// Shape extracted with k>1 falls back to even distribution.
	s := Shape{Muls: 10, Depth: 3, BatchesPerLayer: []int{2, 2, 2}}
	out := perLayerMuls(s)
	sum := 0
	for _, v := range out {
		sum += v
	}
	if sum != 10 || len(out) != 3 {
		t.Errorf("perLayerMuls = %v", out)
	}
}

func TestModelScalingShape(t *testing.T) {
	// The model must show the paper's asymptotics under its amortization
	// assumption (each role processes O(n) values, i.e. width ∝ n·k):
	// with k ∝ n·ε the packed protocol's online bytes per gate are flat
	// in n, while the baseline's grow ∝ n.
	z := SimSizes(2048)
	var corePerGate, basePerGate []float64
	for _, n := range []int{64, 256, 1024} {
		tt := n * 2 / 5
		k := n / 10
		width := 8 * n * k // wide enough that per-role KFF delivery amortizes
		shape := Shape{
			Inputs: 2, InputClients: 2, Clients: 2, Outputs: 1,
			Muls: width, Depth: 1, BatchesPerLayer: []int{width / k},
		}
		corePerGate = append(corePerGate,
			float64(Core(n, tt, k, shape, z).Online)/float64(width))
		baseShape := shape
		baseShape.BatchesPerLayer = []int{width} // k=1 layout for the baseline
		basePerGate = append(basePerGate,
			float64(Baseline(n, (n-1)/2, baseShape, z).Online)/float64(width))
	}
	// Baseline per-gate online grows at least ~linearly across 4× steps.
	for i := 1; i < 3; i++ {
		if basePerGate[i] < 3*basePerGate[i-1] {
			t.Errorf("baseline online per gate not ~linear: %v", basePerGate)
		}
	}
	// Packed per-gate online stays flat (paper Theorem 1): allow 30%.
	for i := 1; i < 3; i++ {
		if corePerGate[i] > 1.3*corePerGate[0] {
			t.Errorf("packed online per gate grew with n: %v", corePerGate)
		}
	}
	// And the gap at n=1024 is large (three orders of magnitude territory).
	if basePerGate[2]/corePerGate[2] < 500 {
		t.Errorf("improvement factor at n=1024 only %.1f×", basePerGate[2]/corePerGate[2])
	}
}

func TestCoreVariantsModelMatchesMeasured(t *testing.T) {
	circ, err := circuit.WideMul(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsFor(circ)
	cases := []struct {
		name string
		opts CoreOptions
	}{
		{"nokff", CoreOptions{NoKFF: true}},
		{"robust", CoreOptions{Robust: true}},
		{"nokff+robust", CoreOptions{NoKFF: true, Robust: true}},
	}
	const n, tt, k = 14, 3, 3 // robust: 3·3+2·2+1 = 14 ≤ 14
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			params := core.Params{
				N: n, T: tt, K: k,
				TE: tte.NewSim(modelBits), PKE: pke.NewSim(),
				NoKFF: c.opts.NoKFF, Robust: c.opts.Robust,
			}
			proto, err := core.New(params, circ, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := proto.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			pred := CoreWith(n, tt, k, ShapeOf(circ, k), SimSizes(modelBits), c.opts)
			if got := res.Report.Phase(comm.PhaseSetup); got != pred.Setup {
				t.Errorf("setup: measured %d, model %d", got, pred.Setup)
			}
			if got := res.Report.Phase(comm.PhaseOffline); got != pred.Offline {
				t.Errorf("offline: measured %d, model %d", got, pred.Offline)
			}
			if got := res.Report.Phase(comm.PhaseOnline); got != pred.Online {
				t.Errorf("online: measured %d, model %d", got, pred.Online)
			}
		})
	}
}
