package costmodel_test

import (
	"math/big"
	"testing"

	"yosompc/internal/costmodel"
	"yosompc/internal/field"
	"yosompc/internal/nizk"
	"yosompc/internal/pke"
	"yosompc/internal/tte"
)

// TestSimSizesMatchEncodings pins every SimSizes field to the length of the
// corresponding backend encoding. The cost model's closed-form predictions
// are validated byte-for-byte against measured runs, so a drift between a
// Sizes field and the real codec would silently skew every Table-1-scale
// projection; this test makes that drift a failure at the source.
func TestSimSizesMatchEncodings(t *testing.T) {
	const bits = 512
	z := costmodel.SimSizes(bits)
	te := tte.NewSim(bits)
	pk, shares, err := te.KeyGen(5, 1)
	if err != nil {
		t.Fatal(err)
	}

	ct, err := te.Encrypt(pk, big.NewInt(7), big.NewInt(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	ctEnc, err := te.EncodeCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctEnc) != z.Ciphertext {
		t.Errorf("ciphertext encodes to %d bytes, SimSizes.Ciphertext = %d", len(ctEnc), z.Ciphertext)
	}

	part, err := te.PartialDecrypt(pk, shares[0], ct)
	if err != nil {
		t.Fatal(err)
	}
	partEnc, err := te.EncodePartial(part)
	if err != nil {
		t.Fatal(err)
	}
	if len(partEnc) != z.Partial {
		t.Errorf("partial encodes to %d bytes, SimSizes.Partial = %d", len(partEnc), z.Partial)
	}

	subs, err := te.Reshare(pk, shares[0])
	if err != nil {
		t.Fatal(err)
	}
	subEnc, err := te.EncodeSubShare(subs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(subEnc) != z.SubShare {
		t.Errorf("subshare encodes to %d bytes, SimSizes.SubShare = %d", len(subEnc), z.SubShare)
	}

	shareEnc, err := te.EncodeKeyShare(shares[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(shareEnc) != z.KeyShare {
		t.Errorf("key share encodes to %d bytes, SimSizes.KeyShare = %d", len(shareEnc), z.KeyShare)
	}

	scheme := pke.NewSim()
	pub, _, err := scheme.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if len(pub.Bytes()) != z.RoleKey {
		t.Errorf("role key is %d bytes, SimSizes.RoleKey = %d", len(pub.Bytes()), z.RoleKey)
	}
	// Envelope overhead must hold for every payload length: costmodel terms
	// of the form PKEOverhead+X assume len(encode(Encrypt(msg))) ==
	// PKEOverhead+len(msg) exactly.
	for _, msgLen := range []int{0, 1, z.SubShare, z.Partial} {
		env, err := pub.Encrypt(make([]byte, msgLen))
		if err != nil {
			t.Fatal(err)
		}
		envEnc, err := scheme.EncodeCiphertext(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(envEnc) != z.PKEOverhead+msgLen {
			t.Errorf("envelope for %d-byte message encodes to %d bytes, want PKEOverhead+len = %d",
				msgLen, len(envEnc), z.PKEOverhead+msgLen)
		}
	}

	if z.Proof != nizk.AttestedProofSize {
		t.Errorf("SimSizes.Proof = %d, nizk.AttestedProofSize = %d", z.Proof, nizk.AttestedProofSize)
	}
	if z.Element != field.ElementSize {
		t.Errorf("SimSizes.Element = %d, field.ElementSize = %d", z.Element, field.ElementSize)
	}
}
