// Package costmodel predicts the exact byte counts the instrumented
// protocols post, as closed-form functions of the committee parameters
// (n, t, k), the circuit shape, and the backend's message sizes.
//
// The model exists because Table 1's committee sizes reach 40 000 roles:
// executing even the ideal-backend protocol there would allocate Θ(n²)
// envelope objects per batch. The test suite validates the model against
// measured runs byte-for-byte at committee sizes up to the dozens, which
// makes the Table-1-scale projections (experiment E2) trustworthy: the
// formulas below are counts of the very postings the driver makes.
package costmodel

import (
	"yosompc/internal/circuit"
	"yosompc/internal/nizk"
	"yosompc/internal/pke"
)

// Sizes are the wire sizes (bytes) of one backend configuration.
type Sizes struct {
	// Ciphertext is a threshold-encryption ciphertext (≈ |N²|).
	Ciphertext int
	// Partial is a partial decryption (≈ |N²|).
	Partial int
	// SubShare is a tsk resharing subshare.
	SubShare int
	// KeyShare is a tsk key share.
	KeyShare int
	// PKEOverhead is the envelope overhead of the role/KFF encryption.
	PKEOverhead int
	// RoleKey is a published role public key.
	RoleKey int
	// Proof is one attested NIZK proof.
	Proof int
	// Element is one field element.
	Element int
}

// SimSizes returns the sizes of the ideal backends for a modelled
// threshold-Paillier modulus of the given bit length, matching
// tte.NewSim(bits) + pke.NewSim().
func SimSizes(bits int) Sizes {
	return Sizes{
		Ciphertext:  bits / 4,
		Partial:     bits / 4,
		SubShare:    bits/4 + 10, // statSecurity/8 slack
		KeyShare:    bits / 4,
		PKEOverhead: 32 + 12 + 16,
		RoleKey:     32,
		Proof:       nizk.AttestedProofSize,
		Element:     8,
	}
}

// Shape is the circuit-shape input of the model.
type Shape struct {
	// Inputs is the total number of input gates.
	Inputs int
	// InputClients is the number of clients contributing inputs.
	InputClients int
	// Clients is the total number of clients.
	Clients int
	// Outputs is the total number of output gates.
	Outputs int
	// Muls is the number of multiplication gates.
	Muls int
	// Depth is the multiplicative depth.
	Depth int
	// BatchesPerLayer[l] is the number of packed batches at layer l+1
	// for the chosen packing factor.
	BatchesPerLayer []int
}

// Batches returns the total number of batches.
func (s Shape) Batches() int {
	total := 0
	for _, b := range s.BatchesPerLayer {
		total += b
	}
	return total
}

// ShapeOf extracts a Shape from a circuit for packing factor k.
func ShapeOf(c *circuit.Circuit, k int) Shape {
	s := Shape{
		Muls:  c.NumMul(),
		Depth: c.Depth(),
	}
	for _, client := range c.Clients() {
		s.Clients++
		n := c.InputCount(client)
		s.Inputs += n
		if n > 0 {
			s.InputClients++
		}
		s.Outputs += len(c.OutputGates(client))
	}
	s.BatchesPerLayer = make([]int, c.Depth())
	for _, mb := range c.MulBatches(k) {
		s.BatchesPerLayer[mb.Layer-1]++
	}
	return s
}

// Phases is a per-phase byte prediction.
type Phases struct {
	Setup, Offline, Online int64
}

// Total returns the sum over phases.
func (p Phases) Total() int64 { return p.Setup + p.Offline + p.Online }

// CoreOptions selects protocol variants for the prediction.
type CoreOptions struct {
	// NoKFF models the §3.2 naive ablation (online re-encryption).
	NoKFF bool
	// Robust models IT-GOD μ layers (no per-layer proofs).
	Robust bool
}

// Core predicts the packed protocol's (internal/core) byte counts for an
// all-honest run in the default configuration.
func Core(n, t, k int, shape Shape, z Sizes) Phases {
	return CoreWith(n, t, k, shape, z, CoreOptions{})
}

// CoreWith predicts byte counts for a protocol variant.
func CoreWith(n, t, k int, shape Shape, z Sizes, opts CoreOptions) Phases {
	envP := int64(z.PKEOverhead + z.Partial)  // envelope carrying a partial decryption
	envS := int64(z.PKEOverhead + z.SubShare) // envelope carrying a tsk subshare
	N := int64(n)
	T := int64(t)
	batches := int64(shape.Batches())
	muls := int64(shape.Muls)
	depth := int64(shape.Depth)

	var setup int64
	setup += int64(z.Ciphertext)/2 + 32              // tpk + crs
	setup += int64(shape.Clients) * int64(z.RoleKey) // client role keys
	kffCount := depth*N + int64(shape.InputClients)  // layer roles + input clients
	if !opts.NoKFF {
		setup += kffCount * int64(z.RoleKey+z.Ciphertext) // KFF publications
	}
	setup += N * int64(z.PKEOverhead+z.KeyShare) // dealer tsk delivery (sealed envelopes)

	var offline int64
	offline += 6 * N * int64(z.RoleKey) // six offline committees' role keys (incl. bridge)
	if muls > 0 {
		offline += N*muls*int64(z.Ciphertext) + N*int64(z.Proof)   // beaver-a
		offline += N*2*muls*int64(z.Ciphertext) + N*int64(z.Proof) // beaver-bc
	}
	targets := int64(shape.Inputs) + muls
	offline += N*(targets+3*T*batches)*int64(z.Ciphertext) + N*int64(z.Proof) // wire randomness + helpers
	// OffDec: partials for 2 openings per mul + resharing to OffRe.
	offline += N*(2*muls*int64(z.Partial)+N*envS) + N*int64(z.Proof)
	if opts.NoKFF {
		// Naive mode: OffRe only passes tsk onward.
		offline += N*N*envS + N*int64(z.Proof)
	} else {
		// OffRe (steps 5–6): input-wire λ envelopes + 3 packed-share
		// envelope sets per batch per target + tsk resharing to the
		// bridge committee.
		offline += N*(int64(shape.Inputs)*envP+3*batches*N*envP+N*envS) + N*int64(z.Proof)
	}
	// Bridge committee: tsk hand-off to OnC1 at the boundary.
	offline += N*N*envS + N*int64(z.Proof)

	var online int64
	online += (2 + depth) * N * int64(z.RoleKey) // online committees' role keys
	if opts.NoKFF {
		// Naive mode: OnC1 re-encrypts everything under role keys online.
		online += N*(int64(shape.Inputs)*envP+3*batches*N*envP+N*envS) + N*int64(z.Proof)
	} else {
		// OnC1 future key distribution + resharing to OnOut.
		online += N*(kffCount*envP+N*envS) + N*int64(z.Proof)
	}
	// Client inputs: μ per input wire + one proof per input client.
	online += int64(shape.Inputs)*int64(z.Element) + int64(shape.InputClients)*int64(z.Proof)
	// μ layers: one element per batch per role, plus one proof per role
	// unless robust decoding replaces verification.
	for _, bl := range shape.BatchesPerLayer {
		online += N * int64(bl) * int64(z.Element)
		if !opts.Robust {
			online += N * int64(z.Proof)
		}
	}
	// Output: one envelope per output gate per role.
	online += N*int64(shape.Outputs)*envP + N*int64(z.Proof)

	return Phases{Setup: setup, Offline: offline, Online: online}
}

// Baseline predicts the CDN-style baseline's (internal/baseline) byte
// counts for an all-honest run.
func Baseline(n, t int, shape Shape, z Sizes) Phases {
	envP := int64(z.PKEOverhead + z.Partial)
	envS := int64(z.PKEOverhead + z.SubShare)
	N := int64(n)
	muls := int64(shape.Muls)
	depth := int64(shape.Depth)

	var setup int64
	setup += int64(z.Ciphertext) / 2                 // tpk
	setup += int64(shape.Clients) * int64(z.RoleKey) // client keys
	setup += N * int64(z.PKEOverhead+z.KeyShare)     // dealer tsk delivery (sealed envelopes)

	var offline int64
	if muls > 0 {
		offline += 2 * N * int64(z.RoleKey)                        // two Beaver committees
		offline += N*muls*int64(z.Ciphertext) + N*int64(z.Proof)   // beaver-a
		offline += N*2*muls*int64(z.Ciphertext) + N*int64(z.Proof) // beaver-bc
	}

	var online int64
	online += (depth + 1) * N * int64(z.RoleKey) // layer + output committee keys
	// Client inputs: one ciphertext per input wire + one proof per
	// client with inputs.
	online += int64(shape.Inputs)*int64(z.Ciphertext) + int64(shape.InputClients)*int64(z.Proof)
	// Each layer: 2 partials per gate per role + resharing + proof.
	mulsPerLayer := perLayerMuls(shape)
	for _, lm := range mulsPerLayer {
		online += N*(2*int64(lm)*int64(z.Partial)+N*envS) + N*int64(z.Proof)
	}
	// Output committee: one envelope per output per role + proof.
	online += N*int64(shape.Outputs)*envP + N*int64(z.Proof)

	return Phases{Setup: setup, Offline: offline, Online: online}
}

// perLayerMuls recovers the per-layer gate counts from BatchesPerLayer
// when the shape was extracted with k=1, or approximates by distributing
// Muls across Depth otherwise. For exact baseline predictions extract the
// shape with ShapeOf(c, 1).
func perLayerMuls(shape Shape) []int {
	out := make([]int, len(shape.BatchesPerLayer))
	copy(out, shape.BatchesPerLayer)
	sum := 0
	for _, v := range out {
		sum += v
	}
	if sum == shape.Muls {
		return out
	}
	// Approximate: spread evenly.
	if shape.Depth == 0 {
		return nil
	}
	out = make([]int, shape.Depth)
	rem := shape.Muls
	for i := range out {
		out[i] = rem / (shape.Depth - i)
		rem -= out[i]
	}
	return out
}

// sanity: PKE overhead must match the real/ideal backends.
var _ = pke.SecretKeySize
