package yosompc

import (
	"net"
	"path/filepath"
	"testing"

	"yosompc/internal/transport"
)

// TestCrossProcessTraceMerge pins the trace-correlation contract: two
// instrumented runs (distinct Proc names, as two OS processes would be)
// mirror into one board server, each exports its own Chrome trace, and
// MergeTraces aligns both onto the board's shared timeline — the merged
// document validates (monotone board lane, all lanes named) and carries a
// clock offset per process.
func TestCrossProcessTraceMerge(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.Serve(ln)
	defer srv.Close()

	circ, err := InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int][]Value{0: Values(2, 3), 1: Values(4, 5)}
	dir := t.TempDir()

	var procs []ProcessTrace
	for _, proc := range []string{"alpha", "beta"} {
		tr := NewTracer()
		cfg := Config{
			N: 7, T: 1, K: 2, Backend: Sim,
			Proc: proc, Trace: tr, MirrorAddr: srv.Addr(),
		}
		if _, err := Run(cfg, circ, inputs); err != nil {
			t.Fatalf("run %s: %v", proc, err)
		}
		path := filepath.Join(dir, proc+".trace.json")
		if err := WriteTraceFile(path, tr); err != nil {
			t.Fatal(err)
		}
		pt, err := ReadProcessTrace(path)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Proc != proc || pt.EpochUS == 0 {
			t.Fatalf("trace file for %s lost its process metadata: %+v", proc, pt)
		}
		procs = append(procs, pt)
	}

	entries, err := transport.Fetch(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no mirrored entries on the board")
	}
	mt, err := MergeTraces(entries, procs)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if len(mt.Offsets) != 2 {
		t.Fatalf("offsets = %v", mt.Offsets)
	}
	// Both process lanes and the board lane carry real events.
	perPid := map[int]int{}
	for _, ev := range mt.Events {
		if ev.Ph != "M" {
			perPid[ev.Pid]++
		}
	}
	for pid := 0; pid <= 2; pid++ {
		if perPid[pid] == 0 {
			t.Errorf("lane %d has no events (%v)", pid, perPid)
		}
	}
	// Round-trip: the merged file validates on disk too.
	out := filepath.Join(dir, "merged.trace.json")
	if err := mt.WriteFile(out); err != nil {
		t.Fatal(err)
	}
}
