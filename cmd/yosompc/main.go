// Command yosompc runs the packed YOSO MPC protocol (or the CDN baseline)
// end to end on a chosen workload and prints the outputs and the
// communication report.
//
// Usage:
//
//	yosompc -circuit inner-product -size 4 -n 8 -t 2 -k 2
//	yosompc -circuit wide -size 16 -depth 2 -n 16 -t 3 -k 4 -backend real
//	yosompc -circuit stats -size 5 -baseline -n 8 -t 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"yosompc"
)

func main() {
	var (
		circuitName = flag.String("circuit", "inner-product", "workload: inner-product | poly-eval | matvec | stats | wide | random")
		circuitFile = flag.String("file", "", "load the circuit from a text-format file instead of -circuit")
		size        = flag.Int("size", 4, "workload size (vector length / degree / matrix dim / clients / width)")
		depth       = flag.Int("depth", 1, "multiplicative depth for the wide workload")
		n           = flag.Int("n", 8, "committee size")
		t           = flag.Int("t", 2, "corruption bound per committee")
		k           = flag.Int("k", 2, "packing factor (ignored with -baseline)")
		backendName = flag.String("backend", "sim", "crypto backend: sim | real")
		useBaseline = flag.Bool("baseline", false, "run the CDN-style baseline instead")
		malicious   = flag.Int("malicious", 0, "actively corrupted roles per committee")
		failstops   = flag.Int("failstops", 0, "crashed roles per committee")
		seed        = flag.Int64("seed", 1, "adversary seed")
		optimize    = flag.Bool("optimize", false, "run the circuit optimizer before executing")
		robust      = flag.Bool("robust", false, "IT-GOD mode: decode cheating μ-shares instead of proof-filtering (needs 3t+2(k-1)+1 ≤ n)")
		workers     = flag.Int("workers", 0, "worker-pool size for the parallel execution engine (0 = one per CPU, 1 = serial)")
		mirror      = flag.String("mirror", "", "live-mirror board postings to a boardd server at this address")
		monitorOn   = flag.Bool("monitor", false, "derive protocol progress from the board and print the summary after the run")
		proc        = flag.String("proc", "", "process name stamped on board postings and trace exports (cross-process correlation)")
		jsonOut     = flag.Bool("json", false, "emit the communication report as JSON")
		traceOut    = flag.String("trace", "", "record protocol spans and write them here (Chrome trace_event JSON; .jsonl for span lines)")
		metricsOut  = flag.String("metrics-out", "", "collect engine metrics and write the JSON snapshot here")
	)
	flag.Parse()

	var (
		circ   *yosompc.Circuit
		inputs map[int][]yosompc.Value
		err    error
	)
	if *circuitFile != "" {
		circ, inputs, err = loadWorkload(*circuitFile)
	} else {
		circ, inputs, err = buildWorkload(*circuitName, *size, *depth)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "yosompc: %v\n", err)
		os.Exit(1)
	}
	if *optimize {
		before := circ.NumMul()
		circ, err = yosompc.OptimizeCircuit(circ)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yosompc: optimize: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("optimizer: %d → %d multiplications\n", before, circ.NumMul())
	}
	cfg := yosompc.Config{
		N: *n, T: *t, K: *k,
		Malicious: *malicious, FailStops: *failstops, Seed: *seed,
		Robust: *robust, MirrorAddr: *mirror, Workers: *workers,
		Proc: *proc,
	}
	if *backendName == "real" {
		cfg.Backend = yosompc.Real
	}
	if *monitorOn {
		cfg.Monitor = yosompc.NewMonitor()
	}
	if *traceOut != "" {
		cfg.Trace = yosompc.NewTracer()
	}
	if *metricsOut != "" {
		cfg.Metrics = yosompc.NewMetricsRegistry()
	}

	var res *yosompc.Result
	if *useBaseline {
		res, err = yosompc.RunBaseline(cfg, circ, inputs)
	} else {
		res, err = yosompc.Run(cfg, circ, inputs)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "yosompc: %v\n", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := yosompc.WriteTraceFile(*traceOut, cfg.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "yosompc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d spans written to %s\n", len(cfg.Trace.Spans()), *traceOut)
	}
	if *metricsOut != "" {
		if err := yosompc.WriteMetricsFile(*metricsOut, cfg.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "yosompc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: snapshot written to %s\n", *metricsOut)
	}

	label := *circuitName
	if *circuitFile != "" {
		label = *circuitFile
	}
	fmt.Printf("circuit: %s (muls=%d depth=%d)\n", label, circ.NumMul(), circ.Depth())
	for _, client := range circ.Clients() {
		if vals := res.Outputs[client]; len(vals) > 0 {
			fmt.Printf("client %d outputs: %v\n", client, vals)
		}
	}
	if len(res.Excluded) > 0 {
		fmt.Printf("excluded roles: %v\n", res.Excluded)
	}
	if *monitorOn {
		fmt.Printf("\nboard-derived progress:\n")
		cfg.Monitor.Snapshot().WriteText(os.Stdout)
	}
	if *jsonOut {
		buf, err := json.MarshalIndent(res.Report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "yosompc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", buf)
		return
	}
	fmt.Printf("\ncommunication:\n%s", res.Report.String())
	if m := circ.NumMul(); m > 0 {
		fmt.Printf("online per gate: %.1f B\n", res.Report.PerGate("online", m))
	}
}

// loadWorkload parses a circuit file and synthesizes deterministic inputs.
func loadWorkload(path string) (*yosompc.Circuit, map[int][]yosompc.Value, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	circ, err := yosompc.ParseCircuit(f)
	if err != nil {
		return nil, nil, err
	}
	return circ, defaultInputsFor(circ), nil
}

func defaultInputsFor(circ *yosompc.Circuit) map[int][]yosompc.Value {
	inputs := map[int][]yosompc.Value{}
	for _, client := range circ.Clients() {
		count := circ.InputCount(client)
		vals := make([]yosompc.Value, count)
		for i := range vals {
			vals[i] = yosompc.NewValue(uint64(client*7 + i + 2))
		}
		inputs[client] = vals
	}
	return inputs
}

func buildWorkload(name string, size, depth int) (*yosompc.Circuit, map[int][]yosompc.Value, error) {
	var (
		circ *yosompc.Circuit
		err  error
	)
	switch name {
	case "inner-product":
		circ, err = yosompc.InnerProduct(size)
	case "poly-eval":
		circ, err = yosompc.PolyEval(size)
	case "matvec":
		circ, err = yosompc.MatVecMul(size)
	case "stats":
		circ, err = yosompc.Statistics(size)
	case "wide":
		circ, err = yosompc.WideMul(size, depth)
	case "random":
		circ, err = yosompc.RandomCircuit(size, size*4, 42)
	default:
		return nil, nil, fmt.Errorf("unknown circuit %q", name)
	}
	if err != nil {
		return nil, nil, err
	}
	return circ, defaultInputsFor(circ), nil
}
