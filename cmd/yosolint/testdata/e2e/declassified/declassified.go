// Package declassified is the end-to-end fixture for justified
// suppression: a real secretflow finding covered by a declassify
// directive. The driver must exit zero here, list the suppression under
// -directives, and include it with its justification in -json output.
package declassified

import (
	"fmt"

	"yosompc/internal/sharing"
)

// Output prints the protocol's reconstructed output value.
func Output(sh sharing.Share) {
	fmt.Println("reconstructed output", sh.Value) //yosolint:declassify output step reveals the reconstructed value by design
}
