// Package sharing is the end-to-end regression fixture for cmd/yosolint:
// one compiling file violating every analyzer in the suite. The driver
// must exit non-zero and name all ten analyzers when pointed here. The
// directory is named "sharing" so the cryptorand and zeroize
// protected-segment rules apply; testdata placement keeps it out of
// ./... wildcard runs.
package sharing

import (
	"log"
	"math/rand"
	"sync"

	"yosompc/internal/comm"
	"yosompc/internal/field"
	realsharing "yosompc/internal/sharing"
	"yosompc/internal/transport"
	"yosompc/internal/yoso"
)

// BadRandom violates cryptorand: protocol randomness from math/rand.
func BadRandom() field.Element {
	return field.New(uint64(rand.Int63()))
}

// BadFieldOps violates fieldops: raw operator skips reduction.
func BadFieldOps(a, b field.Element) field.Element {
	return a + b
}

// BadRoleReuse violates roleonce: the role acts after it spoke.
func BadRoleReuse(r *yoso.Role) {
	r.Spoke()
	r.Post(comm.PhaseOnline, comm.CatInput, []byte("l"), "late")
}

// BadDroppedError violates postcheck: the board error vanishes.
func BadDroppedError(c *transport.Client) {
	c.Close()
}

// BadShareLog violates secretflow: a secret share reaches a logging sink.
func BadShareLog(sh realsharing.Share) {
	log.Printf("dealt share %v", sh)
}

// poster pairs a mutex with a board client for the lockscope violation.
type poster struct {
	mu sync.Mutex
	c  *transport.Client
}

// BadLockedPost violates lockscope: a board post under a held mutex.
func (p *poster) BadLockedPost(payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.c.Post("p", comm.PhaseOnline, comm.CatInput, payload)
	return err
}

// BadSpawn violates goroleak: a goroutine looping on a channel nobody
// closes, with no join, context, or finite body.
func BadSpawn(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// BadSecretBranch violates sidechannel: a share value decides a branch.
func BadSecretBranch(sh realsharing.Share) field.Element {
	if sh.Value == 0 {
		return field.One
	}
	return sh.Value
}

// BadUnwiped violates zeroize: a sampled secret vector is dropped with no
// wipe on the return path.
func BadUnwiped() field.Element {
	v := field.MustRandomVec(4)
	return v[0].Add(v[1])
}

// BadWire violates wirecodec: half a codec with no stream halves.
type BadWire struct{}

// MarshalBinary is the codec half that gates the quartet rule.
func (BadWire) MarshalBinary() ([]byte, error) { return nil, nil }
