// Package sharing is the end-to-end regression fixture for cmd/yosolint:
// one compiling file violating every analyzer in the suite. The driver
// must exit non-zero and name all five analyzers when pointed here. The
// directory is named "sharing" so the cryptorand protected-segment rule
// applies; testdata placement keeps it out of ./... wildcard runs.
package sharing

import (
	"log"
	"math/rand"

	"yosompc/internal/comm"
	"yosompc/internal/field"
	realsharing "yosompc/internal/sharing"
	"yosompc/internal/transport"
	"yosompc/internal/yoso"
)

// BadRandom violates cryptorand: protocol randomness from math/rand.
func BadRandom() field.Element {
	return field.New(uint64(rand.Int63()))
}

// BadFieldOps violates fieldops: raw operator skips reduction.
func BadFieldOps(a, b field.Element) field.Element {
	return a + b
}

// BadRoleReuse violates roleonce: the role acts after it spoke.
func BadRoleReuse(r *yoso.Role) {
	r.Spoke()
	r.Post(comm.PhaseOnline, comm.CatInput, []byte("l"), "late")
}

// BadDroppedError violates postcheck: the board error vanishes.
func BadDroppedError(c *transport.Client) {
	c.Close()
}

// BadShareLog violates secretflow: a secret share reaches a logging sink.
func BadShareLog(sh realsharing.Share) {
	log.Printf("dealt share %v", sh)
}
