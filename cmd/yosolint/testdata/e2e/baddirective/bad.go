// Package baddirective is the end-to-end fixture for directive
// validation: an unknown directive name and a justification-less
// suppression must each fail the run on their own, even though the code
// violates no analyzer.
package baddirective

//yosolint:frobnicate because reasons
var a = 1

var b = 2 //yosolint:ignore
