// Command yosolint runs the repo's static-analysis suite: custom
// analyzers enforcing the crypto and YOSO invariants the compiler cannot
// check (crypto/rand for secret randomness, speak-once role discipline,
// reduction-preserving field arithmetic, handled board errors).
//
// Usage:
//
//	go run ./cmd/yosolint [-tests=false] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 0 when the tree is clean, 1 when any diagnostic is reported,
// and 2 on load or internal errors. See docs/STATIC_ANALYSIS.md for the
// analyzer catalogue and the //yosolint: directive syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/suite"
)

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yosolint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunPackages(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yosolint:", err)
		os.Exit(2)
	}
	if len(diags) == 0 {
		return
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	fmt.Fprintf(os.Stderr, "yosolint: %d finding(s)\n", len(diags))
	os.Exit(1)
}
