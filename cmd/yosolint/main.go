// Command yosolint runs the repo's static-analysis suite: custom
// analyzers enforcing the crypto, YOSO, and concurrency invariants the
// compiler cannot check (crypto/rand for secret randomness, speak-once
// role discipline, reduction-preserving field arithmetic, handled board
// errors, secretflow's interprocedural secret-taint tracking, lockscope's
// blocking-under-lock and lock-order analysis, goroleak's goroutine
// termination evidence, and wirecodec's codec-quartet hygiene).
//
// Usage:
//
//	go run ./cmd/yosolint [-tests=false] [-list] [-json] [-directives] [-time] [-workers=N]
//	                      [-sarif=FILE] [-baseline=FILE] [-baseline-record] [packages]
//
// Packages default to ./... relative to the current directory. The
// package-level passes fan out over -workers goroutines (default: one
// per CPU) via internal/parallel; -time prints each analyzer's
// accumulated wall time to stderr. The exit status is 0 when the tree is
// clean, 1 when any unsuppressed diagnostic (including a malformed
// //yosolint: directive) is reported, and 2 on load or internal errors.
//
// -json emits one JSON object per diagnostic per line, including
// suppressed findings with the justification of the directive covering
// them, for CI artifact upload and audit. -directives lists the active
// suppressions — every finding currently silenced by a //yosolint:
// directive — and exits 0.
//
// -sarif writes a SARIF 2.1.0 log for GitHub code scanning (suppressed
// findings carry inSource suppressions). -baseline compares the
// unsuppressed findings against a recorded baseline and fails only on
// new ones; -baseline -baseline-record (re)writes the baseline from the
// current findings and exits 0. See docs/STATIC_ANALYSIS.md for the
// analyzer catalogue and the directive syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/suite"
)

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line, including suppressed findings")
	directives := flag.Bool("directives", false, "list the active //yosolint: suppressions and exit")
	timing := flag.Bool("time", false, "print per-analyzer accumulated wall time to stderr")
	workers := flag.Int("workers", 0, "package-level analysis worker count (0 = one per CPU, 1 = serial)")
	sarifOut := flag.String("sarif", "", "write a SARIF 2.1.0 log to this file (for GitHub code scanning)")
	baselinePath := flag.String("baseline", "", "compare unsuppressed findings against this baseline file; fail only on new ones")
	baselineRecord := flag.Bool("baseline-record", false, "with -baseline: (re)write the baseline from the current findings and exit 0")
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Deps:true feeds module-level analyzers (secretflow) the summaries
	// and secret-type annotations of in-module dependencies even when the
	// pattern names a single package.
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests, Deps: true}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yosolint:", err)
		os.Exit(2)
	}
	diags, times, err := analysis.RunPackagesTimed(pkgs, analyzers, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yosolint:", err)
		os.Exit(2)
	}
	if *timing {
		for _, at := range times {
			fmt.Fprintf(os.Stderr, "yosolint: %-12s %v\n", at.Name, at.Elapsed.Round(time.Microsecond))
		}
	}
	failing := analysis.Unsuppressed(diags)

	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, diags, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "yosolint:", err)
			os.Exit(2)
		}
	}

	if *baselinePath != "" {
		cwd, _ := os.Getwd()
		if *baselineRecord {
			f, err := os.Create(*baselinePath)
			if err == nil {
				err = analysis.WriteBaseline(f, failing, cwd)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "yosolint:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "yosolint: recorded %d finding(s) to %s\n", len(failing), *baselinePath)
			return
		}
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yosolint:", err)
			os.Exit(2)
		}
		base, err := analysis.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "yosolint:", err)
			os.Exit(2)
		}
		if stale := base.Stale(failing, cwd); len(stale) > 0 {
			fmt.Fprintf(os.Stderr, "yosolint: %d baselined finding(s) no longer occur; re-record to shrink the baseline\n", len(stale))
		}
		failing = base.Filter(failing, cwd)
	}

	switch {
	case *directives:
		for _, d := range diags {
			if !d.Suppressed {
				continue
			}
			fmt.Printf("%s:%d:%d: [%s] suppressed: %s — %s\n",
				relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message, d.Justification)
		}
		return

	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := jsonDiagnostic{
				File:          relPath(d.Pos.Filename),
				Line:          d.Pos.Line,
				Column:        d.Pos.Column,
				Analyzer:      d.Analyzer,
				Message:       d.Message,
				Suppressed:    d.Suppressed,
				Justification: d.Justification,
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "yosolint:", err)
				os.Exit(2)
			}
		}

	default:
		for _, d := range failing {
			fmt.Printf("%s:%d:%d: %s (%s)\n", relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}

	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "yosolint: %d finding(s)\n", len(failing))
		os.Exit(1)
	}
}

// jsonDiagnostic is the -json line format: one diagnostic per line, with
// suppressed findings carrying the justification of their directive.
type jsonDiagnostic struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Column        int    `json:"column"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

// writeSARIF serializes the full diagnostic set (suppressed findings
// included, carrying their suppressions) and re-validates the bytes
// before they land on disk, so a malformed log fails the run rather than
// the code-scanning upload.
func writeSARIF(path string, diags []analysis.Diagnostic, analyzers []*analysis.Analyzer) error {
	cwd, _ := os.Getwd()
	data, err := json.MarshalIndent(analysis.NewSARIF(diags, analyzers, cwd), "", "  ")
	if err != nil {
		return err
	}
	if err := analysis.ValidateSARIF(data); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relPath renders a filename relative to the working directory when it
// lies beneath it.
func relPath(name string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
