package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runYosolint runs the driver from the module root and returns combined
// output and exit code (-1 for non-exit errors).
func runYosolint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/yosolint"}, args...)...)
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if exit, ok := err.(*exec.ExitError); ok {
		return string(out), exit.ExitCode()
	}
	t.Fatalf("running yosolint %v: %v\noutput:\n%s", args, err, out)
	return "", -1
}

// TestDriverFlagsFixture is the end-to-end regression test for the whole
// driver: yosolint run against a fixture package containing one violation
// of each analyzer must exit non-zero and report all eight.
func TestDriverFlagsFixture(t *testing.T) {
	out, code := runYosolint(t, "./cmd/yosolint/testdata/e2e/sharing")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\noutput:\n%s", code, out)
	}
	for _, analyzer := range []string{"cryptorand", "fieldops", "goroleak", "lockscope", "roleonce", "postcheck", "secretflow", "wirecodec"} {
		if !strings.Contains(out, "("+analyzer+")") {
			t.Errorf("output missing a %s finding:\n%s", analyzer, out)
		}
	}
}

// TestDriverTiming asserts the -time flag reports wall time for every
// analyzer in the suite, and that the serial -workers=1 path produces the
// same findings as the parallel default.
func TestDriverTiming(t *testing.T) {
	out, code := runYosolint(t, "-time", "-workers=1", "./cmd/yosolint/testdata/e2e/sharing")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\noutput:\n%s", code, out)
	}
	for _, analyzer := range []string{"cryptorand", "fieldops", "goroleak", "lockscope", "roleonce", "postcheck", "secretflow", "wirecodec"} {
		if !strings.Contains(out, "yosolint: "+analyzer) {
			t.Errorf("-time output missing %s wall time:\n%s", analyzer, out)
		}
		if !strings.Contains(out, "("+analyzer+")") {
			t.Errorf("serial run missing a %s finding:\n%s", analyzer, out)
		}
	}
}

// TestDriverMalformedDirectives asserts that an unknown directive name and
// a justification-less suppression each fail the run on their own.
func TestDriverMalformedDirectives(t *testing.T) {
	out, code := runYosolint(t, "./cmd/yosolint/testdata/e2e/baddirective")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (malformed directives)\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown //yosolint: directive") {
		t.Errorf("output missing unknown-directive finding:\n%s", out)
	}
	if !strings.Contains(out, "requires a justifying comment") {
		t.Errorf("output missing missing-justification finding:\n%s", out)
	}
}

// TestDriverDeclassified asserts the suppression path end to end: a
// justified declassify keeps the run clean, -directives lists the active
// suppression, and -json preserves it with its justification.
func TestDriverDeclassified(t *testing.T) {
	target := "./cmd/yosolint/testdata/e2e/declassified"

	out, code := runYosolint(t, target)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (declassified finding)\noutput:\n%s", code, out)
	}

	out, code = runYosolint(t, "-directives", target)
	if code != 0 {
		t.Fatalf("-directives exit code = %d, want 0\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "[secretflow] suppressed") || !strings.Contains(out, "by design") {
		t.Errorf("-directives output missing the active suppression with its justification:\n%s", out)
	}

	out, code = runYosolint(t, "-json", target)
	if code != 0 {
		t.Fatalf("-json exit code = %d, want 0\noutput:\n%s", code, out)
	}
	var found bool
	sc := bufio.NewScanner(bytes.NewReader([]byte(out)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var rec struct {
			File          string `json:"file"`
			Line          int    `json:"line"`
			Analyzer      string `json:"analyzer"`
			Message       string `json:"message"`
			Suppressed    bool   `json:"suppressed"`
			Justification string `json:"justification"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("-json produced a non-JSON line %q: %v", line, err)
		}
		if rec.Analyzer == "secretflow" && rec.Suppressed {
			found = true
			if rec.Justification == "" {
				t.Error("-json suppressed record carries no justification")
			}
			if rec.File == "" || rec.Line == 0 {
				t.Errorf("-json record missing position: %+v", rec)
			}
		}
	}
	if !found {
		t.Errorf("-json output contains no suppressed secretflow record:\n%s", out)
	}
}

// TestDriverCleanOnRepo asserts the acceptance criterion that the full
// repository lints clean.
func TestDriverCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint walk skipped in -short mode")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/yosolint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("yosolint ./... failed: %v\noutput:\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal(fmt.Errorf("no go.mod above %s", dir))
		}
		dir = parent
	}
}
