package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"yosompc/internal/analysis"
)

// runYosolint runs the driver from the module root and returns combined
// output and exit code (-1 for non-exit errors).
func runYosolint(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/yosolint"}, args...)...)
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if exit, ok := err.(*exec.ExitError); ok {
		return string(out), exit.ExitCode()
	}
	t.Fatalf("running yosolint %v: %v\noutput:\n%s", args, err, out)
	return "", -1
}

// suiteNames is the full analyzer roster the driver must run; the e2e
// fixture violates every one of them.
var suiteNames = []string{
	"cryptorand", "fieldops", "goroleak", "lockscope", "postcheck",
	"roleonce", "secretflow", "sidechannel", "wirecodec", "zeroize",
}

// TestDriverFlagsFixture is the end-to-end regression test for the whole
// driver: yosolint run against a fixture package containing one violation
// of each analyzer must exit non-zero and report all ten.
func TestDriverFlagsFixture(t *testing.T) {
	out, code := runYosolint(t, "./cmd/yosolint/testdata/e2e/sharing")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\noutput:\n%s", code, out)
	}
	for _, analyzer := range suiteNames {
		if !strings.Contains(out, "("+analyzer+")") {
			t.Errorf("output missing a %s finding:\n%s", analyzer, out)
		}
	}
}

// TestDriverTiming asserts the -time flag reports wall time for every
// analyzer in the suite, and that the serial -workers=1 path produces the
// same findings as the parallel default.
func TestDriverTiming(t *testing.T) {
	out, code := runYosolint(t, "-time", "-workers=1", "./cmd/yosolint/testdata/e2e/sharing")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\noutput:\n%s", code, out)
	}
	for _, analyzer := range suiteNames {
		if !strings.Contains(out, "yosolint: "+analyzer) {
			t.Errorf("-time output missing %s wall time:\n%s", analyzer, out)
		}
		if !strings.Contains(out, "("+analyzer+")") {
			t.Errorf("serial run missing a %s finding:\n%s", analyzer, out)
		}
	}
}

// TestDriverMalformedDirectives asserts that an unknown directive name and
// a justification-less suppression each fail the run on their own.
func TestDriverMalformedDirectives(t *testing.T) {
	out, code := runYosolint(t, "./cmd/yosolint/testdata/e2e/baddirective")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (malformed directives)\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown //yosolint: directive") {
		t.Errorf("output missing unknown-directive finding:\n%s", out)
	}
	if !strings.Contains(out, "requires a justifying comment") {
		t.Errorf("output missing missing-justification finding:\n%s", out)
	}
}

// TestDriverDeclassified asserts the suppression path end to end: a
// justified declassify keeps the run clean, -directives lists the active
// suppression, and -json preserves it with its justification.
func TestDriverDeclassified(t *testing.T) {
	target := "./cmd/yosolint/testdata/e2e/declassified"

	out, code := runYosolint(t, target)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (declassified finding)\noutput:\n%s", code, out)
	}

	out, code = runYosolint(t, "-directives", target)
	if code != 0 {
		t.Fatalf("-directives exit code = %d, want 0\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "[secretflow] suppressed") || !strings.Contains(out, "by design") {
		t.Errorf("-directives output missing the active suppression with its justification:\n%s", out)
	}

	out, code = runYosolint(t, "-json", target)
	if code != 0 {
		t.Fatalf("-json exit code = %d, want 0\noutput:\n%s", code, out)
	}
	var found bool
	sc := bufio.NewScanner(bytes.NewReader([]byte(out)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var rec struct {
			File          string `json:"file"`
			Line          int    `json:"line"`
			Analyzer      string `json:"analyzer"`
			Message       string `json:"message"`
			Suppressed    bool   `json:"suppressed"`
			Justification string `json:"justification"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("-json produced a non-JSON line %q: %v", line, err)
		}
		if rec.Analyzer == "secretflow" && rec.Suppressed {
			found = true
			if rec.Justification == "" {
				t.Error("-json suppressed record carries no justification")
			}
			if rec.File == "" || rec.Line == 0 {
				t.Errorf("-json record missing position: %+v", rec)
			}
		}
	}
	if !found {
		t.Errorf("-json output contains no suppressed secretflow record:\n%s", out)
	}
}

// TestDriverSARIF asserts the -sarif flag end to end: the written log
// passes the structural SARIF 2.1.0 validator, names every analyzer as a
// rule, locates the fixture's findings, and carries suppressed findings
// as inSource suppressions.
func TestDriverSARIF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.sarif")
	out, code := runYosolint(t, "-sarif="+path, "./cmd/yosolint/testdata/e2e/sharing")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\noutput:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("-sarif wrote no log: %v", err)
	}
	if err := analysis.ValidateSARIF(data); err != nil {
		t.Fatalf("emitted SARIF log fails 2.1.0 validation: %v\nlog:\n%s", err, data)
	}
	var log analysis.SARIFLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("decoding SARIF log: %v", err)
	}
	if log.Version != analysis.SARIFVersion {
		t.Errorf("version = %q, want %q", log.Version, analysis.SARIFVersion)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "yosolint" {
		t.Errorf("driver name = %q, want yosolint", run.Tool.Driver.Name)
	}
	rules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, analyzer := range suiteNames {
		if !rules[analyzer] {
			t.Errorf("rules missing analyzer %s", analyzer)
		}
	}
	if len(run.Results) == 0 {
		t.Fatal("SARIF log carries no results for the violating fixture")
	}
	for _, res := range run.Results {
		if len(res.Locations) == 0 {
			t.Errorf("result %q has no location", res.Message.Text)
			continue
		}
		uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if !strings.Contains(uri, "testdata/e2e/sharing/bad.go") {
			t.Errorf("result located at %q, want the fixture file", uri)
		}
		if res.PartialFingerprints["yosolintFingerprint/v1"] == "" {
			t.Errorf("result %q missing a partial fingerprint", res.Message.Text)
		}
	}

	// The declassified fixture exercises the suppression leg: its one
	// finding must appear with an inSource suppression, and the run must
	// stay clean (exit 0).
	out, code = runYosolint(t, "-sarif="+path, "./cmd/yosolint/testdata/e2e/declassified")
	if code != 0 {
		t.Fatalf("declassified -sarif exit code = %d, want 0\noutput:\n%s", code, out)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading declassified SARIF log: %v", err)
	}
	if err := analysis.ValidateSARIF(data); err != nil {
		t.Fatalf("declassified SARIF log fails validation: %v", err)
	}
	log = analysis.SARIFLog{}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("decoding declassified SARIF log: %v", err)
	}
	var suppressed bool
	for _, res := range log.Runs[0].Results {
		for _, sup := range res.Suppressions {
			if sup.Kind == "inSource" && sup.Justification != "" {
				suppressed = true
			}
		}
	}
	if !suppressed {
		t.Errorf("declassified SARIF log carries no inSource suppression with a justification:\n%s", data)
	}
}

// TestDriverBaseline asserts the baseline round trip: record the
// fixture's findings, re-run against the baseline and pass, and confirm
// the un-baselined run still fails.
func TestDriverBaseline(t *testing.T) {
	target := "./cmd/yosolint/testdata/e2e/sharing"
	path := filepath.Join(t.TempDir(), "baseline.json")

	out, code := runYosolint(t, "-baseline="+path, "-baseline-record", target)
	if code != 0 {
		t.Fatalf("-baseline-record exit code = %d, want 0\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "recorded") {
		t.Errorf("-baseline-record output does not confirm the recording:\n%s", out)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline file was not written: %v", err)
	}
	base, err := analysis.ReadBaseline(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("recorded baseline does not parse: %v", err)
	}
	if base.Tool != "yosolint" || len(base.Fingerprints) == 0 {
		t.Fatalf("recorded baseline is empty or mislabelled: %+v", base)
	}

	out, code = runYosolint(t, "-baseline="+path, target)
	if code != 0 {
		t.Errorf("baselined run exit code = %d, want 0 (all findings recorded)\noutput:\n%s", code, out)
	}

	out, code = runYosolint(t, target)
	if code != 1 {
		t.Errorf("un-baselined run exit code = %d, want 1\noutput:\n%s", code, out)
	}

	// A baseline recorded on the clean fixture must not mask the
	// violating fixture's findings: every one of them is new.
	out, code = runYosolint(t, "-baseline="+path, "-baseline-record", "./cmd/yosolint/testdata/e2e/declassified")
	if code != 0 {
		t.Fatalf("recording clean baseline: exit %d\noutput:\n%s", code, out)
	}
	out, code = runYosolint(t, "-baseline="+path, target)
	if code != 1 {
		t.Errorf("new findings against an empty baseline: exit %d, want 1\noutput:\n%s", code, out)
	}
}

// TestDriverCleanOnRepo asserts the acceptance criterion that the full
// repository lints clean.
func TestDriverCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint walk skipped in -short mode")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/yosolint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("yosolint ./... failed: %v\noutput:\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal(fmt.Errorf("no go.mod above %s", dir))
		}
		dir = parent
	}
}
