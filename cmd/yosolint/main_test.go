package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverFlagsFixture is the end-to-end regression test for the whole
// driver: yosolint run against a fixture package containing one violation
// of each analyzer must exit non-zero and report all four.
func TestDriverFlagsFixture(t *testing.T) {
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/yosolint", "./cmd/yosolint/testdata/e2e/sharing")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("yosolint exited zero on a fixture with known violations\noutput:\n%s", out)
	}
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running yosolint: %v\noutput:\n%s", err, out)
	}
	if code := exit.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\noutput:\n%s", code, out)
	}
	for _, analyzer := range []string{"cryptorand", "fieldops", "roleonce", "postcheck"} {
		if !strings.Contains(string(out), "("+analyzer+")") {
			t.Errorf("output missing a %s finding:\n%s", analyzer, out)
		}
	}
}

// TestDriverCleanOnRepo asserts the acceptance criterion that the full
// repository lints clean.
func TestDriverCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint walk skipped in -short mode")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/yosolint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("yosolint ./... failed: %v\noutput:\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal(fmt.Errorf("no go.mod above %s", dir))
		}
		dir = parent
	}
}
