// Command sortition prints the paper's Table 1 — the committee-size
// analysis with corruption gap ε (Section 6) — or a single analysis row
// for custom parameters.
//
// Usage:
//
//	sortition                 # reproduce Table 1
//	sortition -C 20000 -f 0.2 # one row
package main

import (
	"flag"
	"fmt"
	"os"

	"yosompc/internal/sortition"
)

func main() {
	c := flag.Int("C", 0, "sortition parameter (expected committee size); 0 prints the full Table 1")
	f := flag.Float64("f", 0.2, "global corruption ratio in (0, 1)")
	trials := flag.Int("montecarlo", 0, "sample this many committees and check the guarantees empirically")
	seed := flag.Int64("seed", 42, "Monte Carlo seed")
	minEps := flag.Float64("mineps", 0, "planning mode: find the smallest C achieving this gap at -f")
	flag.Parse()

	if *minEps > 0 {
		res, err := sortition.MinimalC(*f, *minEps, 1<<20, 100)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortition: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("smallest C achieving eps ≥ %.3f at f=%.2f:\n%s\n", *minEps, *f, res)
		return
	}

	if *c == 0 {
		fmt.Print(sortition.FormatTable(sortition.Table1()))
		return
	}
	res, err := sortition.Analyze(*c, *f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortition: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res)
	n, t, k, eps := res.CommitteeFor(false)
	fmt.Printf("protocol parameters: n=%d t=%d k=%d (eps=%.4f)\n", n, t, k, eps)
	n, t, k, _ = res.CommitteeFor(true)
	fmt.Printf("fail-stop tolerant:  n=%d t=%d k=%d (tolerates %d crashes/committee)\n",
		n, t, k, int(float64(n)*eps))
	if *trials > 0 {
		fmt.Printf("monte carlo: %s\n", res.Simulate(*trials, *seed))
	}
}
