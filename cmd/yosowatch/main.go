// Command yosowatch is the live protocol-progress view over a networked
// bulletin board: it tails a boardd server, reconstructs committee progress
// from manifests and postings alone (internal/monitor), and renders
// per-phase completion, stragglers and fail-stop margins in the terminal.
// It also merges per-process Chrome traces onto the board's shared
// timeline for cross-process performance analysis.
//
//	yosowatch -board localhost:7946                 # live terminal view
//	yosowatch -board localhost:7946 -snapshot       # one-shot JSON snapshot
//	yosowatch -board localhost:7946 -progress :6061 # serve /progress too
//	yosowatch -board localhost:7946 -merge out.json a.trace.json b.trace.json
//
// See docs/OBSERVABILITY.md for the progress schema and the trace-merge
// clock-alignment model.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yosompc/internal/monitor"
	"yosompc/internal/telemetry"
	"yosompc/internal/transport"
)

func main() {
	var (
		board    = flag.String("board", "", "boardd address to observe (required)")
		since    = flag.Int("since", 0, "start from this board sequence number")
		interval = flag.Duration("interval", time.Second, "redraw interval for the live view")
		snapshot = flag.Bool("snapshot", false, "print one JSON progress snapshot and exit")
		mergeOut = flag.String("merge", "", "merge the process trace files given as arguments into this Chrome trace (uses the board as the shared timeline) and exit")
		progress = flag.String("progress", "", "additionally serve the live snapshot as JSON on http://ADDR/progress")
	)
	flag.Parse()
	if *board == "" {
		fmt.Fprintln(os.Stderr, "yosowatch: pass -board ADDR (a boardd server)")
		os.Exit(2)
	}
	switch {
	case *mergeOut != "":
		if err := merge(*board, *since, *mergeOut, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "yosowatch: %v\n", err)
			os.Exit(1)
		}
	case *snapshot:
		if err := oneShot(*board, *since); err != nil {
			fmt.Fprintf(os.Stderr, "yosowatch: %v\n", err)
			os.Exit(1)
		}
	default:
		if err := watch(*board, *since, *interval, *progress); err != nil {
			fmt.Fprintf(os.Stderr, "yosowatch: %v\n", err)
			os.Exit(1)
		}
	}
}

// oneShot fetches the board's current contents and prints the derived
// progress snapshot as JSON.
func oneShot(addr string, since int) error {
	entries, err := transport.Fetch(addr, since)
	if err != nil {
		return err
	}
	m := monitor.New()
	for _, e := range entries {
		m.Ingest(e)
	}
	buf, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", buf)
	return nil
}

// merge aligns the given per-process Chrome traces onto the board timeline
// and writes the combined document.
func merge(addr string, since int, out string, tracePaths []string) error {
	if len(tracePaths) == 0 {
		return fmt.Errorf("-merge needs process trace files as arguments")
	}
	entries, err := transport.Fetch(addr, since)
	if err != nil {
		return err
	}
	procs := make([]monitor.ProcessTrace, 0, len(tracePaths))
	for _, path := range tracePaths {
		pt, err := monitor.ReadTraceFile(path)
		if err != nil {
			return err
		}
		procs = append(procs, pt)
	}
	mt, err := monitor.MergeTraces(entries, procs)
	if err != nil {
		return err
	}
	if err := mt.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("yosowatch: merged %d process traces + %d board entries into %s\n",
		len(procs), len(entries), out)
	for proc, off := range mt.Offsets {
		fmt.Printf("  clock offset %-12s %+d µs\n", proc, off)
	}
	return nil
}

// watch tails the board live, redrawing the terminal view every interval
// until interrupted (or serving it over HTTP when progressAddr is set).
func watch(addr string, since int, interval time.Duration, progressAddr string) error {
	m := monitor.New()
	stop, err := m.RunTail(addr, since)
	if err != nil {
		return err
	}
	if progressAddr != "" {
		h := telemetry.HandlerWithProgress(nil, nil, func() any { return m.Snapshot() })
		srv, err := telemetry.ListenAndServe(progressAddr, h)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("yosowatch: progress JSON on http://%s/progress\n", srv.Addr())
	}
	fmt.Printf("yosowatch: observing %s from seq %d\n", addr, since)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s := m.Snapshot()
			// Clear-and-home so the view redraws in place on ANSI terminals.
			fmt.Print("\033[H\033[2J")
			fmt.Printf("yosowatch %s  (seq entries %d)\n", addr, s.Entries)
			s.WriteText(os.Stdout)
		case <-sig:
			err := stop()
			fmt.Println()
			m.Snapshot().WriteText(os.Stdout)
			return err
		}
	}
}
