// Command benchcomm regenerates the paper's evaluation series (DESIGN.md
// experiment index): per-gate online communication versus committee size
// (E1), the Table-1 improvement factors (E2), offline scaling (E3), the
// fail-stop trade-off (E4), and the packing ablation.
//
// Usage:
//
//	benchcomm                      # all experiments
//	benchcomm -experiment online   # just E1
//	benchcomm -experiment improvement -widthmult 32
package main

import (
	"flag"
	"fmt"
	"os"

	"yosompc/internal/bench"
	"yosompc/internal/paillier"
	"yosompc/internal/sortition"
	"yosompc/internal/telemetry"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "all | table1 | online | improvement | offline | failstop | robust | amortization | totalcost | ablation | sharing | wire | speedup | paillier")
		sharingN   = flag.Int("sharing-nmax", 1024, "E12 largest committee size (powers of 4 from 64 up to this)")
		sharingR   = flag.Int("sharing-reps", 3, "E12 timed repetitions per figure")
		widthMult  = flag.Int("widthmult", 16, "E2 workload width multiplier (width = widthmult·n·k)")
		eps        = flag.Float64("eps", 0.25, "gap ε for measured sweeps")
		workers    = flag.Int("workers", 0, "worker-pool size for all measured runs (0 = one per CPU, 1 = serial)")
		speedupW   = flag.Int("speedup-width", 1024, "E11 workload width (mul gates) for -experiment speedup")
		paillierB  = flag.Int("paillier-bits", 2048, "E14 Paillier modulus size: 512, 768, or 2048")
		paillierR  = flag.Int("paillier-reps", 3, "E14 timed repetitions per figure")
		paillierN  = flag.Int("paillier-n", 1024, "E14b opening-kernel committee size (Δ = n!)")
		paillierT  = flag.Int("paillier-t", 16, "E14b opening-kernel threshold (t+1 partials combined)")
		traceOut   = flag.String("trace", "", "trace all measured runs and write the spans here (Chrome trace_event JSON; .jsonl for span lines)")
		metricsOut = flag.String("metrics-out", "", "collect engine metrics across all measured runs and write the JSON snapshot here")
		stampDir   = flag.String("stamp", "", "also write each experiment's result as BENCH_<name>.json (telemetry-stamped) into this directory")
	)
	flag.Parse()
	bench.Workers = *workers
	if *traceOut != "" {
		bench.Trace = telemetry.NewTracer()
	}
	if *metricsOut != "" || *stampDir != "" {
		bench.Metrics = telemetry.NewRegistry()
	}

	// stamp persists an experiment's rows next to the telemetry collected
	// so far; exporters below flush the accumulated trace/metrics at exit.
	stamp := func(name string, result any) error {
		if *stampDir == "" {
			return nil
		}
		path, err := bench.WriteStamped(*stampDir, name, result)
		if err != nil {
			return err
		}
		fmt.Printf("stamped: %s\n\n", path)
		return nil
	}
	defer func() {
		if *traceOut != "" {
			if err := telemetry.WriteTraceFile(*traceOut, bench.Trace); err != nil {
				fmt.Fprintf(os.Stderr, "benchcomm: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d spans written to %s\n", len(bench.Trace.Spans()), *traceOut)
		}
		if *metricsOut != "" {
			if err := telemetry.WriteMetricsFile(*metricsOut, bench.Metrics); err != nil {
				fmt.Fprintf(os.Stderr, "benchcomm: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("metrics: snapshot written to %s\n", *metricsOut)
		}
	}()

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchcomm: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		fmt.Println("=== T1: Table 1 (sortition parameters with gap) ===")
		fmt.Print(sortition.FormatTable(sortition.Table1()))
		fmt.Println()
		return nil
	})

	run("online", func() error {
		pts, err := bench.OnlineVsN([]int{8, 16, 32, 64}, 256, 1, *eps)
		if err != nil {
			return err
		}
		fmt.Println("=== E1: online bytes/gate vs committee size (measured) ===")
		fmt.Print(bench.FormatOnlineVsN(pts))
		fmt.Println()
		return stamp("online", pts)
	})

	run("improvement", func() error {
		rows, err := bench.ImprovementFactors(*widthMult)
		if err != nil {
			return err
		}
		fmt.Println("=== E2: online improvement factors at Table-1 parameters ===")
		fmt.Print(bench.FormatImprovement(rows))
		fmt.Println()
		return stamp("improvement", rows)
	})

	run("offline", func() error {
		byGates, err := bench.OfflineVsGates(16, 4, 4, []int{8, 16, 32, 64})
		if err != nil {
			return err
		}
		fmt.Println("=== E3a: offline bytes vs circuit size (n=16) ===")
		fmt.Print(bench.FormatOfflineScaling(byGates))
		byN, err := bench.OfflineVsN([]int{8, 16, 32, 64}, 16, *eps)
		if err != nil {
			return err
		}
		fmt.Println("=== E3b: offline bytes vs committee size (16-mul circuit) ===")
		fmt.Print(bench.FormatOfflineScaling(byN))
		fmt.Println()
		return stamp("offline", map[string]any{"byGates": byGates, "byN": byN})
	})

	run("failstop", func() error {
		res, err := bench.FailStop(24, *eps, 16)
		if err != nil {
			return err
		}
		fmt.Println("=== E4: fail-stop tolerance (§5.4) ===")
		fmt.Printf("n=%d t=%d: packing %d → %d tolerates %d crashed roles per committee\n",
			res.N, res.T, res.KFull, res.KHalf, res.Dropped)
		fmt.Printf("completed with crashes: %v; μ-opening overhead %.2f×\n\n", res.Completed, res.Overhead)
		return stamp("failstop", res)
	})

	run("robust", func() error {
		row, err := bench.RobustComparison(14, 3, 2, 16)
		if err != nil {
			return err
		}
		fmt.Println("=== E9: IT-GOD (robust) vs proof-filtered mode ===")
		fmt.Printf("n=%d t=%d k=%d: online %d B (proofs) vs %d B (robust); per-run proof saving %d B\n",
			row.N, row.T, row.K, row.ProofOnline, row.RobustOnline, row.ProofBytesSaved)
		fmt.Printf("packing budget: k ≤ %d (proofs) vs k ≤ %d (robust decoding)\n\n",
			row.MaxKProof, row.MaxKRobust)
		return stamp("robust", row)
	})

	run("amortization", func() error {
		pts, err := bench.AmortizationCurve(16, 3, 4, []int{8, 16, 32, 64, 128, 256})
		if err != nil {
			return err
		}
		fmt.Println("=== E10: online amortization curve (n=16, k=4) ===")
		fmt.Print(bench.FormatAmortization(pts))
		fmt.Println()
		return stamp("amortization", pts)
	})

	run("totalcost", func() error {
		pts, err := bench.TotalCost([]int{8, 16, 32}, 16, *eps)
		if err != nil {
			return err
		}
		fmt.Println("=== Limitation: total (setup+offline+online) cost vs baseline ===")
		fmt.Print(bench.FormatTotalCost(pts))
		fmt.Println()
		return stamp("totalcost", pts)
	})

	run("sharing", func() error {
		var ns []int
		for n := 64; n <= *sharingN; n *= 4 {
			ns = append(ns, n)
		}
		rows, err := bench.SharingHotpath(ns, *sharingR)
		if err != nil {
			return err
		}
		fmt.Println("=== E12: packed share algebra, cached domain vs naive (measured) ===")
		fmt.Print(bench.FormatSharingHotpath(rows))
		fmt.Println()
		return stamp("sharing_hotpath", rows)
	})

	run("wire", func() error {
		res, err := bench.WireExperiment(8, 2, 2, 16)
		if err != nil {
			return err
		}
		fmt.Println("=== E13: mirrored run vs server-measured bytes + codec throughput ===")
		fmt.Print(bench.FormatWire(res))
		fmt.Println()
		if !res.ReportsMatch {
			return fmt.Errorf("server-measured report diverges from the in-process meter")
		}
		return stamp("wire", res)
	})

	// E14 is wall-clock heavy at its production-representative defaults
	// (2048-bit modulus, Δ = 1024!), so like E11 it only runs when named
	// explicitly, never under -experiment all.
	if *experiment == "paillier" {
		var sk *paillier.PrivateKey
		switch *paillierB {
		case 512:
			sk = paillier.FixedTestKey(0)
		case 768:
			sk = paillier.FixedTestKey768(0)
		case 2048:
			sk = paillier.FixedTestKey2048()
		default:
			fmt.Fprintf(os.Stderr, "benchcomm: paillier: no fixed key at %d bits (use 512, 768, or 2048)\n", *paillierB)
			os.Exit(1)
		}
		fail := func(err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchcomm: paillier: %v\n", err)
				os.Exit(1)
			}
		}
		hot, err := bench.PaillierHotpath(sk, *paillierR, 8, *paillierN)
		fail(err)
		fmt.Println("=== E14a: Paillier hot paths, modexp engine vs naive (measured) ===")
		fmt.Print(bench.FormatPaillierHotpath(hot))
		fmt.Println()
		opening, err := bench.PaillierOpeningKernel(sk, *paillierN, *paillierT, *paillierR)
		fail(err)
		fmt.Println("=== E14b: offline opening-round kernel, engine vs naive (measured) ===")
		fmt.Print(bench.FormatPaillierOpening(opening))
		fmt.Println()
		fail(stamp("paillier_hotpath", map[string]any{"hotpath": hot, "opening": opening}))
		return
	}

	// E11 is wall-clock heavy (two full offline phases at n=64), so it
	// only runs when named explicitly, never under -experiment all.
	if *experiment == "speedup" {
		res, err := bench.OfflineSpeedup(64, 15, 8, *speedupW, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcomm: speedup: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("=== E11: offline wall clock, serial vs worker pool ===")
		fmt.Print(bench.FormatOfflineSpeedup(res))
		fmt.Println()
		if err := stamp("speedup", res); err != nil {
			fmt.Fprintf(os.Stderr, "benchcomm: speedup: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run("ablation", func() error {
		rows, err := bench.PackingAblation(16, 3, 4, 16)
		if err != nil {
			return err
		}
		fmt.Println("=== Ablation: packing on/off ===")
		for _, r := range rows {
			fmt.Printf("%-16s μ-online %6d B  (%.1f B/gate, %.2f× packed)\n",
				r.Name, r.OnlineBytes, r.OnlinePerGate, r.RelativeToFull)
		}
		fmt.Println()
		rows, err = bench.KFFAblation(16, 3, 4, 16)
		if err != nil {
			return err
		}
		fmt.Println("=== Ablation: keys-for-future on/off (§3.2 naive) ===")
		for _, r := range rows {
			fmt.Printf("%-16s online %8d B  (%.1f B/gate, %.2f× of KFF)\n",
				r.Name, r.OnlineBytes, r.OnlinePerGate, r.RelativeToFull)
		}
		fmt.Println()
		return stamp("ablation", rows)
	})
}
