// Command boardd runs the networked bulletin-board service and its
// observer client:
//
//	boardd -listen :7946                 # serve a board
//	boardd -listen :7946 -debug :6060   # … with live metrics + pprof
//	boardd -watch localhost:7946        # tail a board's postings live
//
// Protocol runs mirror into a board with `yosompc -mirror <addr>`; remote
// observers audit who posted how many bytes in which phase — the public
// record the YOSO broadcast channel carries. With -debug, the server also
// exposes an HTTP observability surface (/metrics, /progress, /debug/vars,
// /debug/pprof/...) for live profiling and board-derived protocol progress
// (straggler and fail-stop tracking); see docs/OBSERVABILITY.md. Use
// `yosowatch` for the live terminal rendering of the same progress.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yosompc/internal/monitor"
	"yosompc/internal/telemetry"
	"yosompc/internal/transport"
)

func main() {
	var (
		listen = flag.String("listen", "", "serve a board on this address (e.g. :7946)")
		debug  = flag.String("debug", "", "with -listen: also serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060)")
		watch  = flag.String("watch", "", "tail a board at this address")
		since  = flag.Int("since", 0, "with -watch: start from this sequence number")
	)
	flag.Parse()

	switch {
	case *listen != "":
		serve(*listen, *debug)
	case *watch != "":
		tail(*watch, *since)
	default:
		fmt.Fprintln(os.Stderr, "boardd: pass -listen ADDR or -watch ADDR")
		os.Exit(2)
	}
}

func serve(addr, debugAddr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boardd: %v\n", err)
		os.Exit(1)
	}
	var reg *telemetry.Registry
	if debugAddr != "" {
		reg = telemetry.NewRegistry()
	}
	s := transport.Serve(ln)
	s.Instrument(reg)
	var debugSrv *telemetry.HTTPServer
	if debugAddr != "" {
		// The monitor derives protocol progress (committee completion,
		// stragglers, fail-stop margins) from the posts this server
		// accepts, and /progress serves its snapshot.
		mon := monitor.New()
		mon.Instrument(reg)
		mon.AttachServer(s)
		h := telemetry.HandlerWithProgress(reg, nil, func() any { return mon.Snapshot() })
		debugSrv, err = telemetry.ListenAndServe(debugAddr, h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boardd: debug listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("boardd: metrics, progress and pprof on http://%s\n", debugSrv.Addr())
	}
	fmt.Printf("boardd: serving bulletin board on %s\n", s.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("boardd: shutting down; %d postings (%s)\n", s.Len(),
		func() string { r := s.Report(); return fmt.Sprintf("%d bytes", r.Total) }())
	if debugSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := debugSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "boardd: debug shutdown: %v\n", err)
		}
		cancel()
	}
	_ = s.Close()
}

func tail(addr string, since int) {
	entries, stop, err := transport.Tail(addr, since)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boardd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("boardd: tailing %s from seq %d\n", addr, since)
	for e := range entries {
		fmt.Printf("#%-6d %-9s %-22s %8d B  %s\n",
			e.Seq, e.Phase, e.Category, e.Size, e.From)
	}
	// The stream ended: surface why. stop() reports the terminal decode
	// error — nil only when the server closed the stream cleanly at a
	// frame boundary.
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "boardd: tail disconnected: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("boardd: stream closed by server")
}
