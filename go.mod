module yosompc

go 1.22
