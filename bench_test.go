package yosompc

// The benchmark harness: one benchmark per table or figure-style series in
// the paper's evaluation (the experiment ids refer to DESIGN.md §4). Each
// benchmark prints the regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's quantitative content alongside performance
// numbers; EXPERIMENTS.md records paper-vs-measured.

import (
	"fmt"
	"sync"
	"testing"

	"yosompc/internal/bench"
	"yosompc/internal/sortition"
)

var printOnce sync.Map

// printTable prints a labelled table exactly once per process.
func printTable(label, body string) {
	if _, loaded := printOnce.LoadOrStore(label, true); loaded {
		return
	}
	fmt.Printf("\n=== %s ===\n%s\n", label, body)
}

// BenchmarkTable1 regenerates the paper's Table 1 (experiment T1): the
// sortition analysis with gap ε for every (C, f) grid point.
func BenchmarkTable1(b *testing.B) {
	var rows []sortition.Row
	for i := 0; i < b.N; i++ {
		rows = sortition.Table1()
	}
	printTable("T1: Table 1 (sortition parameters with gap)", sortition.FormatTable(rows))
	feasible := 0
	for _, r := range rows {
		if r.Feasible {
			feasible++
		}
	}
	b.ReportMetric(float64(feasible), "feasible-rows")
}

// BenchmarkSortitionMonteCarlo empirically validates the Section 6 tail
// bounds (experiment E8): across sampled committees, corruption counts
// stay below t and honest counts above the reconstruction threshold.
func BenchmarkSortitionMonteCarlo(b *testing.B) {
	res, err := sortition.Analyze(20000, 0.20)
	if err != nil {
		b.Fatal(err)
	}
	var st sortition.TrialStats
	for i := 0; i < b.N; i++ {
		st = res.Simulate(10000, 42)
		if st.ViolationsT != 0 || st.ViolationsGap != 0 || st.ViolationsRecon != 0 {
			b.Fatalf("guarantee violated: %s", st)
		}
	}
	printTable("E8: Monte Carlo sortition validation (C=20000, f=0.20)", st.String()+"\n")
	b.ReportMetric(st.MarginT, "corruption-margin")
}

// BenchmarkOnlineVsN measures experiment E1: per-gate online bytes of the
// packed protocol (flat in n with k ∝ n) against the CDN baseline (linear
// in n), on a wide one-layer circuit.
func BenchmarkOnlineVsN(b *testing.B) {
	var pts []bench.OnlineVsNPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.OnlineVsN([]int{8, 16, 32, 64}, 256, 1, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E1: online bytes/gate vs committee size (measured, sim backend)",
		bench.FormatOnlineVsN(pts))
	last := pts[len(pts)-1]
	b.ReportMetric(last.CoreMuPerGate, "ours-mu-B/gate@n64")
	b.ReportMetric(last.BaselineOnlinePerGate, "baseline-B/gate@n64")
}

// BenchmarkImprovementFactors evaluates experiment E2: the online
// improvement factor at every feasible Table-1 parameter set, via the
// measured-validated cost model (§1.1.2's "28×" and ">1000×" claims).
func BenchmarkImprovementFactors(b *testing.B) {
	var rows []bench.ImprovementRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.ImprovementFactors(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E2: online improvement factors at Table-1 parameters",
		bench.FormatImprovement(rows))
	for _, r := range rows {
		if r.C == 20000 && r.F == 0.20 {
			b.ReportMetric(r.ByteFactor, "factor@C20000-f0.20")
		}
		if r.C == 1000 && r.F == 0.05 {
			b.ReportMetric(r.ByteFactor, "factor@C1000-f0.05")
		}
	}
}

// BenchmarkOfflineScalingGates measures experiment E3 (|C| axis): offline
// bytes per gate stay ~constant as the circuit grows (O(n·|C|) total).
func BenchmarkOfflineScalingGates(b *testing.B) {
	var pts []bench.OfflineScalingPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.OfflineVsGates(16, 4, 4, []int{8, 16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E3a: offline bytes vs circuit size (n=16 fixed)",
		bench.FormatOfflineScaling(pts))
	b.ReportMetric(pts[len(pts)-1].PerGate, "offline-B/gate")
}

// BenchmarkOfflineScalingN measures experiment E3 (n axis): offline bytes
// per gate grow ∝ n.
func BenchmarkOfflineScalingN(b *testing.B) {
	var pts []bench.OfflineScalingPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.OfflineVsN([]int{8, 16, 32, 64}, 16, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E3b: offline bytes vs committee size (16-mul circuit)",
		bench.FormatOfflineScaling(pts))
	b.ReportMetric(pts[len(pts)-1].PerGate, "offline-B/gate@n64")
}

// BenchmarkFailStopOverhead measures experiment E4 (§5.4): halving the
// packing factor tolerates nε crashed honest roles per committee at a
// bounded online overhead.
func BenchmarkFailStopOverhead(b *testing.B) {
	var res *bench.FailStopResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.FailStop(24, 0.25, 16)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("fail-stop run did not complete")
		}
	}
	printTable("E4: fail-stop tolerance (§5.4)", fmt.Sprintf(
		"n=%d t=%d: k %d → %d tolerates %d crashed roles/committee; μ-opening overhead %.2f×\n",
		res.N, res.T, res.KFull, res.KHalf, res.Dropped, res.Overhead))
	b.ReportMetric(res.Overhead, "online-overhead")
}

// BenchmarkPackingAblation quantifies the packed-sharing contribution:
// the same protocol with k = 1 (no packing).
func BenchmarkPackingAblation(b *testing.B) {
	var rows []bench.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.PackingAblation(16, 3, 4, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Ablation: packing on/off", fmt.Sprintf(
		"%s: online %d B (%.1f B/gate)\n%s: online %d B (%.1f B/gate) — %.2f× of packed\n",
		rows[0].Name, rows[0].OnlineBytes, rows[0].OnlinePerGate,
		rows[1].Name, rows[1].OnlineBytes, rows[1].OnlinePerGate, rows[1].RelativeToFull))
	b.ReportMetric(rows[1].RelativeToFull, "unpacked-vs-packed")
}

// BenchmarkRobustMode compares the two GOD mechanisms (experiment E9).
func BenchmarkRobustMode(b *testing.B) {
	var row *bench.RobustRow
	var err error
	for i := 0; i < b.N; i++ {
		row, err = bench.RobustComparison(14, 3, 2, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E9: IT-GOD (robust) vs proof-filtered mode", fmt.Sprintf(
		"n=%d t=%d k=%d: online %d B (proofs) vs %d B (robust); proof saving %d B; packing budget %d vs %d\n",
		row.N, row.T, row.K, row.ProofOnline, row.RobustOnline,
		row.ProofBytesSaved, row.MaxKProof, row.MaxKRobust))
	b.ReportMetric(float64(row.ProofBytesSaved), "proof-bytes-saved")
}

// BenchmarkAmortizationCurve measures the convergence of online bytes per
// gate to the μ-opening floor as circuit width grows (experiment E10).
func BenchmarkAmortizationCurve(b *testing.B) {
	var pts []bench.AmortizationPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.AmortizationCurve(16, 3, 4, []int{8, 32, 128})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("E10: online amortization curve (n=16, k=4)",
		bench.FormatAmortization(pts))
	b.ReportMetric(pts[len(pts)-1].OnlinePerGate, "online-B/gate@w128")
	b.ReportMetric(pts[len(pts)-1].MuPerGate, "mu-floor-B/gate")
}

// BenchmarkKFFAblation quantifies the keys-for-future contribution: the
// §3.2 naive approach re-encrypts packed shares online instead.
func BenchmarkKFFAblation(b *testing.B) {
	var rows []bench.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.KFFAblation(16, 3, 4, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Ablation: keys-for-future on/off (§3.2 naive)", fmt.Sprintf(
		"%s: online %d B (%.1f B/gate)\n%s: online %d B (%.1f B/gate) — %.2f× of KFF\n",
		rows[0].Name, rows[0].OnlineBytes, rows[0].OnlinePerGate,
		rows[1].Name, rows[1].OnlineBytes, rows[1].OnlinePerGate, rows[1].RelativeToFull))
	b.ReportMetric(rows[1].RelativeToFull, "naive-vs-kff")
}

// BenchmarkTotalCost measures the limitation figure: total bytes across
// all phases, packed protocol vs baseline (the paper's conclusion notes
// the preprocessing does not benefit from k).
func BenchmarkTotalCost(b *testing.B) {
	var pts []bench.TotalCostPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = bench.TotalCost([]int{8, 16, 32}, 16, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("Limitation: total cost (all phases) vs baseline",
		bench.FormatTotalCost(pts))
	b.ReportMetric(pts[len(pts)-1].Ratio, "total-ratio@n32")
}

// BenchmarkEndToEndSim times a full protocol run (setup+offline+online)
// with the ideal backends.
func BenchmarkEndToEndSim(b *testing.B) {
	circ, err := WideMul(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	in := map[int][]Value{
		0: Values(1, 2, 3, 4, 5, 6, 7, 8),
		1: Values(2, 3, 4, 5, 6, 7, 8, 9),
	}
	cfg := Config{N: 16, T: 3, K: 4, Backend: Sim}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, circ, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndReal times a full protocol run with real threshold
// Paillier and ECIES — the cryptographic hot path.
func BenchmarkEndToEndReal(b *testing.B) {
	circ, err := InnerProduct(2)
	if err != nil {
		b.Fatal(err)
	}
	in := map[int][]Value{0: Values(3, 5), 1: Values(7, 11)}
	cfg := Config{N: 5, T: 1, K: 2, Backend: Real}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, circ, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineEndToEndSim times the CDN baseline for comparison.
func BenchmarkBaselineEndToEndSim(b *testing.B) {
	circ, err := WideMul(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	in := map[int][]Value{
		0: Values(1, 2, 3, 4, 5, 6, 7, 8),
		1: Values(2, 3, 4, 5, 6, 7, 8, 9),
	}
	cfg := Config{N: 16, T: 7, Backend: Sim}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBaseline(cfg, circ, in); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkOfflinePhase times setup + the full offline phase (Steps 1–6)
// at the E11 reference size — n=64, k=8, 1000 multiplication gates — for a
// given worker-pool size. The communication report is identical for every
// worker count (asserted in internal/bench and internal/core); these
// benchmarks expose the wall-clock difference.
func benchmarkOfflinePhase(b *testing.B, workers int) {
	if testing.Short() {
		b.Skip("heavy offline wall-clock benchmark in -short mode")
	}
	circ, err := WideMul(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{N: 64, T: 15, K: 8, Backend: Sim, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Prepare(cfg, circ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflinePhaseSerial is the engine's serial reference path.
func BenchmarkOfflinePhaseSerial(b *testing.B) { benchmarkOfflinePhase(b, 1) }

// BenchmarkOfflinePhaseParallel uses one worker per CPU; the speedup over
// BenchmarkOfflinePhaseSerial is bounded by the machine's CPU count.
func BenchmarkOfflinePhaseParallel(b *testing.B) { benchmarkOfflinePhase(b, 0) }

// BenchmarkOfflineSpeedup runs experiment E11 end to end at a reduced
// width and reports the measured serial/parallel ratio as a metric.
func BenchmarkOfflineSpeedup(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy offline wall-clock benchmark in -short mode")
	}
	var res *bench.OfflineSpeedupResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.OfflineSpeedup(64, 15, 8, 128, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ReportsEqual {
			b.Fatal("serial and parallel offline reports diverged")
		}
	}
	printTable("E11: offline wall clock, serial vs worker pool (width 128)",
		bench.FormatOfflineSpeedup(res))
	b.ReportMetric(res.Speedup, "offline-speedup")
}

// BenchmarkOnlineLatency times ONLY the online phase (inputs → outputs)
// against preprocessed correlations — the latency a deployment sees once
// inputs arrive. Compare with BenchmarkEndToEndSim, which pays the
// preprocessing every iteration.
func BenchmarkOnlineLatency(b *testing.B) {
	circ, err := WideMul(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	in := map[int][]Value{
		0: Values(1, 2, 3, 4, 5, 6, 7, 8),
		1: Values(2, 3, 4, 5, 6, 7, 8, 9),
	}
	cfg := Config{N: 16, T: 3, K: 4, Backend: Sim}
	// Preprocess outside the timed region; each iteration consumes one.
	prepared := make([]*Prepared, b.N)
	for i := range prepared {
		p, err := Prepare(cfg, circ)
		if err != nil {
			b.Fatal(err)
		}
		prepared[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prepared[i].Execute(in); err != nil {
			b.Fatal(err)
		}
	}
}
