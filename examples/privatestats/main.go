// Privatestats: the large-scale federated-statistics workload that
// motivates YOSO MPC. Six hospitals each hold one sensitive measurement;
// the committee computes the sum and the (n²-scaled) variance without any
// hospital revealing its value, while two committee roles per committee
// are actively malicious — their cheating is caught by proof verification
// and output delivery is still guaranteed.
package main

import (
	"fmt"
	"log"

	"yosompc"
)

func main() {
	const hospitals = 6
	circ, err := yosompc.Statistics(hospitals)
	if err != nil {
		log.Fatal(err)
	}

	// Committee of 12 with t = 2 active corruptions and packing k = 2.
	cfg := yosompc.Config{
		N: 12, T: 2, K: 2,
		Backend:   yosompc.Sim,
		Malicious: 2,
		Seed:      7,
	}

	// One private measurement per hospital.
	measurements := []uint64{120, 135, 128, 141, 117, 133}
	inputs := map[int][]yosompc.Value{}
	for h := 0; h < hospitals; h++ {
		inputs[h] = yosompc.Values(measurements[h])
	}

	res, err := yosompc.Run(cfg, circ, inputs)
	if err != nil {
		log.Fatal(err)
	}

	// Every hospital receives (Σx, n·Σx² − (Σx)²).
	sum := res.Outputs[0][0]
	varNum := res.Outputs[0][1]
	fmt.Printf("participants: %d hospitals, committee n=%d (t=%d malicious per committee)\n",
		hospitals, cfg.N, cfg.Malicious)
	fmt.Printf("Σx           = %v\n", sum)
	fmt.Printf("n²·variance  = %v  (variance ≈ %.2f)\n",
		varNum, float64(varNum.Uint64())/float64(hospitals*hospitals))
	fmt.Printf("cheaters caught and excluded: %d role-steps\n\n", len(res.Excluded))
	fmt.Printf("communication:\n%s", res.Report.String())
}
