// Scoring: private linear-model inference. A bank holds a proprietary
// credit-scoring model (weights and bias); an applicant holds private
// financial features. The committee evaluates
//
//	score = ⟨weights, features⟩ + bias
//
// so the applicant learns the score without seeing the model and the bank
// never sees the features. The circuit is built by hand with the Builder
// API to show non-generator usage.
package main

import (
	"fmt"
	"log"

	"yosompc"
)

const (
	bankClient      = 0
	applicantClient = 1
	features        = 5
)

func main() {
	b := yosompc.NewCircuit()

	// Bank inputs: weights then bias. (Wire handles are opaque values
	// returned by the builder; type inference names them.)
	ws := make([]yosompc.Wire, features)
	for i := range ws {
		ws[i] = b.Input(bankClient)
	}
	bias := b.Input(bankClient)

	// Applicant inputs: features.
	xs := make([]yosompc.Wire, features)
	for i := range xs {
		xs[i] = b.Input(applicantClient)
	}

	// score = Σ w_i·x_i + bias.
	acc := b.Mul(ws[0], xs[0])
	for i := 1; i < features; i++ {
		acc = b.Add(acc, b.Mul(ws[i], xs[i]))
	}
	acc = b.Add(acc, bias)
	b.Output(acc, applicantClient)

	circ, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := yosompc.Config{N: 10, T: 2, K: 3, Backend: yosompc.Sim}
	res, err := yosompc.Run(cfg, circ, map[int][]yosompc.Value{
		bankClient:      yosompc.Values(3, 1, 4, 1, 5, 100), // weights + bias
		applicantClient: yosompc.Values(10, 20, 30, 40, 50),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3·10 + 1·20 + 4·30 + 1·40 + 5·50 + 100 = 560.
	fmt.Printf("applicant's credit score: %v (expected 560)\n\n", res.Outputs[applicantClient][0])
	fmt.Printf("communication:\n%s", res.Report.String())
}
