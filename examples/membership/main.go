// Membership: private set membership through pure field arithmetic. A
// compliance service holds a confidential watchlist; a bank holds a
// customer identifier. The committee evaluates
//
//	1 − Π_i (x − s_i)^(p−1)
//
// so the bank learns only the yes/no bit — not the list — and the service
// never sees the identifier. Equality tests come from Fermat's little
// theorem (x^(p−1) is 0 at 0 and 1 elsewhere), so the whole computation is
// ~120 multiplications per list entry at depth ~61: a deep, narrow
// schedule with one committee per multiplication layer.
package main

import (
	"fmt"
	"log"

	"yosompc"
)

func main() {
	const watchlistSize = 3
	circ, err := yosompc.MembershipIndicator(watchlistSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("membership circuit: %d multiplications, depth %d, %d rounds\n",
		circ.NumMul(), circ.Depth(), 9+circ.Depth())

	cfg := yosompc.Config{N: 6, T: 1, K: 1, Backend: yosompc.Sim}
	watchlist := yosompc.Values(555001, 555002, 555003)

	for _, query := range []uint64{555002, 700000} {
		res, err := yosompc.Run(cfg, circ, map[int][]yosompc.Value{
			0: yosompc.Values(query), // bank's customer id
			1: watchlist,             // compliance service's list
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "clear"
		if res.Outputs[0][0] == yosompc.NewValue(1) {
			verdict = "ON WATCHLIST"
		}
		fmt.Printf("query %d → %s (online: %.1f KiB)\n",
			query, verdict, float64(res.Report.ByPhase["online"])/1024)
	}
}
