// Failstop: the §5.4 trade-off in action. The sortition analysis for
// C = 5000, f = 0.15 yields committees of c ≈ 5100 with gap ε ≈ 0.05; at
// laptop scale we keep the same ratios (n = 20, ε = 0.25). Running with
// the halved packing factor k′ = nε/2 lets the protocol finish even when
// ⌊nε⌋ honest roles crash in every committee — a full-k run with the same
// crashes would fall below the reconstruction threshold t + 2(k−1) + 1.
package main

import (
	"fmt"
	"log"

	"yosompc"
)

func main() {
	circ, err := yosompc.WideMul(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[int][]yosompc.Value{
		0: yosompc.Values(2, 3, 4, 5),
		1: yosompc.Values(6, 7, 8, 9),
	}

	const (
		n     = 20
		t     = 4 // < n(1/2 − ε) with ε = 0.25
		kFull = 6 // = n·ε + 1, the largest packing GOD admits (§5.4)
		kHalf = 3 // = n·ε/2 + 1 (fail-stop mode, §5.4)
		drop  = 6 // crashed honest roles per committee (> n − t − (t+2k−1) for full k)
	)

	// Full packing, no crashes: the efficient configuration.
	res, err := yosompc.Run(yosompc.Config{N: n, T: t, K: kFull, Backend: yosompc.Sim}, circ, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full packing k=%d, all honest:  outputs %v, online %s\n",
		kFull, res.Outputs[0][:2], human(res.Report.Phase("online")))

	// Full packing with nε crashes: reconstruction quorum is lost.
	_, err = yosompc.Run(yosompc.Config{
		N: n, T: t, K: kFull, Backend: yosompc.Sim, FailStops: drop, Seed: 3,
	}, circ, inputs)
	fmt.Printf("full packing k=%d, %d crashes:  %v\n", kFull, drop, errOrOK(err))

	// Halved packing with the same crashes: §5.4 says the run survives.
	res, err = yosompc.Run(yosompc.Config{
		N: n, T: t, K: kHalf, Backend: yosompc.Sim, FailStops: drop, Seed: 3,
	}, circ, inputs)
	if err != nil {
		log.Fatalf("fail-stop mode should have completed: %v", err)
	}
	fmt.Printf("half packing k=%d, %d crashes:  outputs %v, online %s (GOD preserved)\n",
		kHalf, drop, res.Outputs[0][:2], human(res.Report.Phase("online")))
	fmt.Printf("crashed role-steps tolerated: %d\n", len(res.Excluded))
}

func human(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func errOrOK(err error) string {
	if err != nil {
		return "FAILED as expected (quorum below t+2(k−1)+1)"
	}
	return "unexpectedly succeeded"
}
