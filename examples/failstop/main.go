// Failstop: the §5.4 trade-off in action. The sortition analysis for
// C = 5000, f = 0.15 yields committees of c ≈ 5100 with gap ε ≈ 0.05; at
// laptop scale we keep the same ratios (n = 20, ε = 0.25). Running with
// the halved packing factor k′ = nε/2 lets the protocol finish even when
// ⌊nε⌋ honest roles crash in every committee — a full-k run with the same
// crashes would fall below the reconstruction threshold t + 2(k−1) + 1.
package main

import (
	"fmt"
	"log"

	"yosompc"
)

func main() {
	circ, err := yosompc.WideMul(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[int][]yosompc.Value{
		0: yosompc.Values(2, 3, 4, 5),
		1: yosompc.Values(6, 7, 8, 9),
	}

	const (
		n     = 20
		t     = 4 // < n(1/2 − ε) with ε = 0.25
		kFull = 6 // = n·ε + 1, the largest packing GOD admits (§5.4)
		kHalf = 3 // = n·ε/2 + 1 (fail-stop mode, §5.4)
		drop  = 6 // crashed honest roles per committee (> n − t − (t+2k−1) for full k)
	)

	// Full packing, no crashes: the efficient configuration.
	res, err := yosompc.Run(yosompc.Config{N: n, T: t, K: kFull, Backend: yosompc.Sim}, circ, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full packing k=%d, all honest:  outputs %v, online %s\n",
		kFull, res.Outputs[0][:2], human(res.Report.Phase("online")))

	// Full packing with nε crashes: reconstruction quorum is lost.
	_, err = yosompc.Run(yosompc.Config{
		N: n, T: t, K: kFull, Backend: yosompc.Sim, FailStops: drop, Seed: 3,
	}, circ, inputs)
	fmt.Printf("full packing k=%d, %d crashes:  %v\n", kFull, drop, errOrOK(err))

	// Halved packing with the same crashes: §5.4 says the run survives.
	// A board monitor watches the run and measures the damage from the
	// public record alone: which speakers never posted, and how much
	// fail-stop tolerance each committee has left.
	mon := yosompc.NewMonitor()
	res, err = yosompc.Run(yosompc.Config{
		N: n, T: t, K: kHalf, Backend: yosompc.Sim, FailStops: drop, Seed: 3, Monitor: mon,
	}, circ, inputs)
	if err != nil {
		log.Fatalf("fail-stop mode should have completed: %v", err)
	}
	fmt.Printf("half packing k=%d, %d crashes:  outputs %v, online %s (GOD preserved)\n",
		kHalf, drop, res.Outputs[0][:2], human(res.Report.Phase("online")))
	fmt.Printf("crashed role-steps tolerated: %d\n", len(res.Excluded))

	// The monitor saw every crash without any in-process hook: each
	// committee is missing exactly `drop` of its n speakers, and the
	// remaining margin (tolerated − missing) stayed non-negative — that is
	// why GOD held. The still-active final committee's missing members
	// show up as stragglers with their board-time wait.
	snap := mon.Snapshot()
	if snap.MarginMin == nil {
		log.Fatal("monitor saw no committee speak")
	}
	quorum := t + 2*(kHalf-1) + 1
	fmt.Printf("\nboard-derived failure accounting (quorum %d of %d per committee):\n", quorum, n)
	for _, c := range snap.Committees {
		fmt.Printf("  %-10s posted %2d/%2d  missing %d  margin %+d\n",
			c.Committee, c.Posted, c.N, len(c.Missing), c.Margin)
		if len(c.Missing) != drop {
			log.Fatalf("monitor should report %d silent members of %s, got %v", drop, c.Committee, c.Missing)
		}
		if c.Margin != (n-quorum)-drop {
			log.Fatalf("committee %s margin = %d, want %d", c.Committee, c.Margin, (n-quorum)-drop)
		}
	}
	fmt.Printf("minimum fail-stop margin: %d more crash(es) per committee were tolerable\n", *snap.MarginMin)
	if *snap.MarginMin < 0 {
		log.Fatal("margin went negative yet the run completed")
	}
	last := snap.Committees[len(snap.Committees)-1]
	if len(last.Stragglers) != drop {
		log.Fatalf("final committee %s should still list %d stragglers, got %+v", last.Committee, drop, last.Stragglers)
	}
	fmt.Printf("final committee %s still waiting on: ", last.Committee)
	for i, st := range last.Stragglers {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(st.Role)
	}
	fmt.Println(" (confirmed fail-stops once the run ends)")
}

func human(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func errOrOK(err error) string {
	if err != nil {
		return "FAILED as expected (quorum below t+2(k−1)+1)"
	}
	return "unexpectedly succeeded"
}
