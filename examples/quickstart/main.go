// Quickstart: two clients compute the inner product of their private
// vectors through the packed YOSO MPC protocol, end to end on real
// cryptography (threshold Paillier + ECIES role keys), and print the
// result together with the communication bill.
package main

import (
	"fmt"
	"log"

	"yosompc"
)

func main() {
	// Client 0 holds x, client 1 holds y; client 0 learns ⟨x, y⟩.
	circ, err := yosompc.InnerProduct(4)
	if err != nil {
		log.Fatal(err)
	}

	// A committee of 8 roles tolerating t = 2 corruptions with packing
	// factor k = 2 (the reconstruction bound t + 2(k−1) + 1 = 5 ≤ 8).
	cfg := yosompc.Config{N: 8, T: 2, K: 2, Backend: yosompc.Real}

	res, err := yosompc.Run(cfg, circ, map[int][]yosompc.Value{
		0: yosompc.Values(1, 2, 3, 4),
		1: yosompc.Values(5, 6, 7, 8),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("⟨x, y⟩ = %v (expected 70)\n\n", res.Outputs[0][0])
	fmt.Printf("communication:\n%s", res.Report.String())
}
