// Robust: information-theoretic guaranteed output delivery. Instead of
// attaching a NIZK proof to every μ-share, committee roles post bare
// shares and Berlekamp–Welch error correction decodes out up to t lies —
// the route the paper's conclusion raises for the information-theoretic
// setting. The price is a smaller packing budget (3t + 2(k−1) + 1 ≤ n
// instead of t + 2(k−1) + 1 ≤ n); the benefit is one fewer cryptographic
// assumption on the online critical path and n fewer proof broadcasts per
// layer.
package main

import (
	"fmt"
	"log"

	"yosompc"
)

func main() {
	circ, err := yosompc.MatVecMul(3) // bank matrix × client vector
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[int][]yosompc.Value{
		0: yosompc.Values(1, 2, 3, 4, 5, 6, 7, 8, 9), // 3×3 matrix
		1: yosompc.Values(1, 0, 2),                   // vector
	}

	// n=14, t=3: robust decoding needs 3·3 + 2(2−1) + 1 = 12 ≤ 14.
	// Every committee contains 3 actively lying roles.
	for _, robust := range []bool{false, true} {
		cfg := yosompc.Config{
			N: 14, T: 3, K: 2,
			Backend:   yosompc.Sim,
			Malicious: 3, Seed: 9,
			Robust: robust,
		}
		res, err := yosompc.Run(cfg, circ, inputs)
		if err != nil {
			log.Fatal(err)
		}
		mode := "proof-filtered GOD"
		if robust {
			mode = "IT-GOD (Berlekamp–Welch)"
		}
		fmt.Printf("%-28s A·x = %v, online proofs %6d B\n",
			mode, res.Outputs[1], res.Report.ByCat["online"]["proofs"])
	}
	// Expected A·x = [1+6, 4+12, 7+18] = [7 16 25] — identical under both
	// modes; the robust run posts fewer online proof bytes.
}
