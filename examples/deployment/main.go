// Deployment: the offline/online split in production shape. Preprocessing
// runs "overnight" (no inputs needed), every bulletin-board posting is
// live-mirrored to a boardd auditing service, and when inputs arrive only
// the O(1)-per-gate online phase runs. A remote observer tails the board
// concurrently — deriving live protocol progress (committee completion,
// fail-stop margins) from the mirrored postings alone, exactly what
// `yosowatch -board <addr>` renders — and prints the audit trail's phase
// totals.
package main

import (
	"fmt"
	"log"
	"net"

	"yosompc"
	"yosompc/internal/comm"
	"yosompc/internal/monitor"
	"yosompc/internal/transport"
)

func main() {
	// An auditing board service (normally `boardd -listen :7946`).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	board := transport.Serve(ln)
	defer board.Close()

	// A remote observer tails the board as the run proceeds: a progress
	// monitor reconstructs the protocol's state from the entries, and the
	// same stream feeds the byte audit.
	mon := monitor.New()
	entries, stopTail, err := transport.Tail(board.Addr(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer stopTail()
	observed := make(chan map[string]int64)
	go func() {
		perPhase := map[string]int64{}
		for e := range entries {
			mon.Ingest(e)
			perPhase[e.Phase] += int64(e.Size)
		}
		observed <- perPhase
	}()

	// Overnight: preprocess a trading-settlement computation (inner
	// product of positions and prices) without knowing the values.
	circ, err := yosompc.InnerProduct(8)
	if err != nil {
		log.Fatal(err)
	}
	cfg := yosompc.Config{
		N: 12, T: 2, K: 3,
		Backend:    yosompc.Sim,
		MirrorAddr: board.Addr(),
	}
	// Note: mirroring for split-phase runs uses the facade Run here for
	// brevity; Prepare/Execute carry the same board.
	res, err := yosompc.Run(cfg, circ, map[int][]yosompc.Value{
		0: yosompc.Values(100, 250, 75, 310, 42, 18, 99, 5), // positions
		1: yosompc.Values(3, 7, 2, 1, 12, 9, 4, 30),         // prices
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("settlement value: %v\n", res.Outputs[0][0])
	fmt.Printf("rounds: %d, postings mirrored: %d\n\n", res.Rounds, board.Len())

	// Local and remote accounting agree byte-for-byte.
	stopTail()
	perPhase := <-observed
	fmt.Println("auditor's view (via boardd):")
	for _, phase := range []string{"setup", "offline", "online"} {
		fmt.Printf("  %-8s %10d B (local: %d B)\n",
			phase, perPhase[phase], res.Report.ByPhase[comm.Phase(phase)])
	}

	// The remote monitor derived the run's progress purely from mirrored
	// board contents: every committee's manifest arrived before its
	// members spoke, so the observer knows the run is complete.
	snap := mon.Snapshot()
	if !snap.Complete {
		log.Fatalf("remote monitor should see a complete run: %+v", snap)
	}
	fmt.Printf("\nremote monitor: %d/%d expected speakers posted", snap.Posted, snap.Expected)
	if snap.MarginMin != nil {
		fmt.Printf(", min fail-stop margin %d", *snap.MarginMin)
	}
	fmt.Println()
	for _, p := range snap.Phases {
		fmt.Printf("  %-8s %3d/%-3d speakers (complete: %v)\n", p.Phase, p.Posted, p.Expected, p.Complete)
	}
}
