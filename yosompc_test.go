package yosompc

import (
	"net"
	"reflect"
	"strings"
	"testing"

	"yosompc/internal/transport"
)

func TestFacadeRunSim(t *testing.T) {
	circ, err := InnerProduct(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 8, T: 2, K: 2, Backend: Sim}
	res, err := Run(cfg, circ, map[int][]Value{
		0: Values(1, 2, 3, 4),
		1: Values(5, 6, 7, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0][0] != NewValue(70) {
		t.Errorf("inner product = %v, want 70", res.Outputs[0][0])
	}
	if res.Report.Total == 0 {
		t.Error("empty communication report")
	}
}

func TestFacadeRunReal(t *testing.T) {
	if testing.Short() {
		t.Skip("real crypto in -short mode")
	}
	circ, err := InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 5, T: 1, K: 2, Backend: Real}
	res, err := Run(cfg, circ, map[int][]Value{0: Values(2, 3), 1: Values(4, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0][0] != NewValue(23) {
		t.Errorf("inner product = %v, want 23", res.Outputs[0][0])
	}
}

func TestFacadeBaselineMatchesCore(t *testing.T) {
	circ, err := Statistics(3)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[int][]Value{0: Values(5), 1: Values(7), 2: Values(9)}
	coreRes, err := Run(Config{N: 8, T: 2, K: 2, Backend: Sim}, circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := RunBaseline(Config{N: 5, T: 2, Backend: Sim}, circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for client := 0; client < 3; client++ {
		for i := range coreRes.Outputs[client] {
			if coreRes.Outputs[client][i] != baseRes.Outputs[client][i] {
				t.Errorf("client %d output %d: core %v vs baseline %v",
					client, i, coreRes.Outputs[client][i], baseRes.Outputs[client][i])
			}
		}
	}
}

func TestFacadeAdversary(t *testing.T) {
	circ, err := InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 10, T: 2, K: 2, Backend: Sim, Malicious: 2, FailStops: 1, Seed: 5}
	res, err := Run(cfg, circ, map[int][]Value{0: Values(1, 2, 3), 1: Values(4, 5, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0][0] != NewValue(32) {
		t.Errorf("inner product = %v, want 32 under adversary", res.Outputs[0][0])
	}
	if len(res.Excluded) == 0 {
		t.Error("no exclusions recorded")
	}
}

func TestFacadeSortition(t *testing.T) {
	r, err := AnalyzeSortition(1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 28 {
		t.Errorf("k = %d, want 28", r.K)
	}
	cfg := ConfigFromSortition(r, false)
	if cfg.N != 949 || cfg.K != 28 {
		t.Errorf("config = %+v", cfg)
	}
	half := ConfigFromSortition(r, true)
	if half.K != 14 {
		t.Errorf("fail-stop k = %d, want 14", half.K)
	}
	if !strings.Contains(Table1(), "949") {
		t.Error("Table1 output missing first feasible row")
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewCircuit()
	x := b.Input(0)
	y := b.Input(1)
	b.Output(b.Mul(b.Add(x, y), b.Sub(x, y)), 0) // x² − y²
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{N: 6, T: 1, K: 1, Backend: Sim}, circ,
		map[int][]Value{0: Values(10), 1: Values(6)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0][0] != NewValue(64) {
		t.Errorf("x²−y² = %v, want 64", res.Outputs[0][0])
	}
}

func TestFacadeInvalidConfig(t *testing.T) {
	circ, err := InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{N: 3, T: 2, K: 2, Backend: Sim}, circ, nil); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := RunBaseline(Config{N: 3, T: 2, Backend: Sim}, circ, nil); err == nil {
		t.Error("invalid baseline config accepted")
	}
}

func TestFacadePrepareExecute(t *testing.T) {
	circ, err := Statistics(3)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := Prepare(Config{N: 8, T: 2, K: 2, Backend: Sim}, circ)
	if err != nil {
		t.Fatal(err)
	}
	if prepared.OfflineReport().Total == 0 {
		t.Error("no preprocessing bytes")
	}
	res, err := prepared.Execute(map[int][]Value{0: Values(2), 1: Values(4), 2: Values(6)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0][0] != NewValue(12) {
		t.Errorf("sum = %v, want 12", res.Outputs[0][0])
	}
	if _, err := prepared.Execute(nil); err == nil {
		t.Error("preprocessing reuse accepted")
	}
}

func TestFacadeMirror(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := transport.Serve(ln)
	defer server.Close()

	circ, err := InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 6, T: 1, K: 1, Backend: Sim, MirrorAddr: server.Addr()}
	res, err := Run(cfg, circ, map[int][]Value{0: Values(1, 2), 1: Values(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	// Every local posting reached the remote board with identical byte
	// accounting.
	if int64(server.Len()) != res.Report.Postings {
		t.Errorf("remote postings %d, local %d", server.Len(), res.Report.Postings)
	}
	// The server meters what it measures on received payloads, never a
	// claimed size — so the full per-phase, per-category breakdown must
	// reproduce the in-process report exactly.
	if remote := server.Report(); !reflect.DeepEqual(remote, res.Report) {
		t.Errorf("remote report %+v\nlocal report %+v", remote, res.Report)
	}
	// And the mirrored entries carry the real encoded bytes, not stubs.
	var payloadSum int64
	for _, e := range server.Entries(0) {
		if e.Size != len(e.Payload) {
			t.Fatalf("entry #%d: Size %d but %d payload bytes", e.Seq, e.Size, len(e.Payload))
		}
		payloadSum += int64(len(e.Payload))
	}
	if payloadSum != res.Report.Total {
		t.Errorf("entry payloads sum to %d bytes, local report says %d", payloadSum, res.Report.Total)
	}
}

func TestFacadeMonitor(t *testing.T) {
	circ, err := InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor()
	reg := NewMetricsRegistry()
	cfg := Config{N: 7, T: 1, K: 2, Backend: Sim, Proc: "facade-test", Monitor: mon, Metrics: reg}
	if _, err := Run(cfg, circ, map[int][]Value{0: Values(1, 2), 1: Values(3, 4)}); err != nil {
		t.Fatal(err)
	}
	s := mon.Snapshot()
	if !s.Complete {
		t.Fatalf("monitored run not complete: %+v", s)
	}
	for _, c := range s.Committees {
		if c.Proc != "facade-test" {
			t.Errorf("committee %s proc = %q", c.Committee, c.Proc)
		}
	}
	snap := reg.Snapshot()
	if snap.Gauges["monitor.speakers_posted"] == 0 {
		t.Errorf("monitor metrics not registered: %+v", snap.Gauges)
	}
}
