// Package yosompc is a reproduction of "Towards Scalable YOSO MPC via
// Packed Secret-Sharing" (Escudero, Masserova, Polychroniadou, PODC 2025):
// a YOSO (You Only Speak Once) secure multi-party computation protocol in
// the offline/online paradigm whose online communication is O(1) per gate —
// independent of the committee size n — for corruption thresholds
// t < n(1/2 − ε), achieved with packed Shamir secret sharing (packing
// factor k ≈ n·ε) over a CDN-style linearly homomorphic threshold
// encryption substrate with keys-for-future.
//
// The package is a facade over the implementation packages:
//
//   - Circuits are built with NewCircuit (or the generators InnerProduct,
//     PolyEval, MatVecMul, Statistics, WideMul).
//   - Config selects committee parameters and a backend: Real (threshold
//     Paillier + ECIES) or Sim (ideal functionalities with byte-accurate
//     size models, for large-committee communication sweeps).
//   - Run executes the protocol and returns outputs plus a communication
//     report; RunBaseline executes the CDN-style comparison protocol of
//     Gentry et al. (CRYPTO 2021).
//   - AnalyzeSortition / Table1 reproduce the paper's Section 6 committee
//     analysis (Table 1).
//
// A minimal end-to-end computation:
//
//	circ, _ := yosompc.InnerProduct(4)
//	cfg := yosompc.Config{N: 8, T: 2, K: 2, Backend: yosompc.Sim}
//	res, _ := yosompc.Run(cfg, circ, map[int][]yosompc.Value{
//	    0: yosompc.Values(1, 2, 3, 4),
//	    1: yosompc.Values(5, 6, 7, 8),
//	})
//	fmt.Println(res.Outputs[0][0]) // 70
package yosompc

import (
	"yosompc/internal/baseline"
	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/core"
	"yosompc/internal/field"
	"yosompc/internal/monitor"
	"yosompc/internal/paillier"
	"yosompc/internal/pke"
	"yosompc/internal/sortition"
	"yosompc/internal/telemetry"
	"yosompc/internal/transport"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

// Value is one MPC field element (F_p with p = 2^61 − 1).
type Value = field.Element

// NewValue reduces an integer into the field.
func NewValue(v uint64) Value { return field.New(v) }

// Values builds a slice of field elements.
func Values(vs ...uint64) []Value {
	out := make([]Value, len(vs))
	for i, v := range vs {
		out[i] = field.New(v)
	}
	return out
}

// Circuit is an arithmetic circuit over the MPC field.
type Circuit = circuit.Circuit

// Builder assembles circuits gate by gate.
type Builder = circuit.Builder

// Wire is a handle to a circuit wire, produced and consumed by Builder
// methods.
type Wire = circuit.WireID

// NewCircuit returns an empty circuit builder.
func NewCircuit() *Builder { return circuit.NewBuilder() }

// Standard circuit generators (see internal/circuit for the layouts).
var (
	InnerProduct  = circuit.InnerProduct
	PolyEval      = circuit.PolyEval
	MatVecMul     = circuit.MatVecMul
	Statistics    = circuit.Statistics
	WideMul       = circuit.WideMul
	RandomCircuit = circuit.Random

	// Boolean gadgets from Fermat's little theorem (each equality test
	// costs ~120 multiplications at depth ~61).
	NonZeroIndicator    = circuit.NonZeroIndicator
	EqualsIndicator     = circuit.EqualsIndicator
	NotEqualsIndicator  = circuit.NotEqualsIndicator
	MembershipIndicator = circuit.MembershipIndicator
)

// ParseCircuit reads the one-gate-per-line text format (see
// internal/circuit's Format documentation), FormatCircuit renders it, and
// OptimizeCircuit applies dead-gate elimination, common-subexpression
// merging and constant folding.
var (
	ParseCircuit    = circuit.Parse
	FormatCircuit   = circuit.Format
	OptimizeCircuit = circuit.Optimize
)

// Backend selects the cryptographic backends.
type Backend int

// Backends.
const (
	// Sim uses ideal-functionality crypto with a byte-accurate size model
	// (modelled 2048-bit threshold Paillier). Use it for committee sizes
	// beyond a few dozen and for communication sweeps.
	Sim Backend = iota
	// Real uses threshold Paillier (Damgård–Jurik style, fixed 512-bit
	// test modulus) and ECIES-X25519 role encryption. Use it to exercise
	// the real cryptographic paths.
	Real
)

// Config selects protocol parameters.
type Config struct {
	// N is the committee size, T the per-committee corruption bound, and
	// K the packing factor; the protocol needs T + 2(K−1) + 1 ≤ N.
	N, T, K int
	// Backend selects Sim (default) or Real crypto.
	Backend Backend
	// Malicious and FailStops corrupt/crash that many roles per
	// committee (0 = all honest); Leaky roles follow the protocol but
	// count toward the adversary's view (honest-but-curious).
	Malicious, FailStops, Leaky int
	// Seed fixes the corruption pattern for reproducibility.
	Seed int64
	// Robust enables information-theoretic guaranteed output delivery on
	// the μ-opening path: no per-layer proofs, cheating shares decoded
	// out by Berlekamp–Welch. Requires 3T + 2(K−1) + 1 ≤ N.
	Robust bool
	// MirrorAddr, when set, live-mirrors every bulletin-board posting
	// (metadata + sizes) to a boardd server at this address, so remote
	// observers can audit the run (`boardd -watch`).
	MirrorAddr string
	// Workers bounds the worker-pool parallelism of the execution engine
	// (committee-member fan-out and the driver's homomorphic-evaluation
	// loops). 0 means one worker per CPU; 1 forces the serial path. The
	// communication report and audit totals are identical for every value
	// — only wall clock changes.
	Workers int
	// Trace, when non-nil, records hierarchical protocol → phase →
	// committee → role spans for the run (export with WriteTraceFile or
	// Tracer.WriteChromeTrace). nil disables tracing at zero cost.
	Trace *Tracer
	// Metrics, when non-nil, receives worker-pool counters and histograms
	// from the execution engine. nil disables collection at zero cost.
	Metrics *MetricsRegistry
	// Monitor, when non-nil, observes the run's bulletin board and derives
	// protocol progress from it: per-phase completion, expected-vs-posted
	// speakers per committee, stragglers, and the fail-stop margin (§5.4).
	// nil disables monitoring at zero cost. When Metrics is also set the
	// monitor's counters and gauges are registered on it.
	Monitor *Monitor
	// Proc names this OS process for cross-process correlation: board
	// postings (and their mirror, when MirrorAddr is set) carry it in
	// their trace context, and trace exports embed it so MergeTraces can
	// align this process's spans onto the shared board timeline. Empty is
	// fine for single-process runs.
	Proc string
}

// Tracer records hierarchical spans of a protocol run; see
// internal/telemetry and docs/OBSERVABILITY.md. A nil *Tracer is a valid
// disabled tracer.
type Tracer = telemetry.Tracer

// MetricsRegistry collects counters, gauges and histograms; a nil
// *MetricsRegistry is a valid disabled registry.
type MetricsRegistry = telemetry.Registry

// NewTracer returns an enabled span tracer for Config.Trace.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// NewMetricsRegistry returns an enabled metrics registry for
// Config.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Monitor derives protocol progress from bulletin-board contents alone;
// see internal/monitor and docs/OBSERVABILITY.md. A nil *Monitor is a
// valid disabled monitor.
type Monitor = monitor.Monitor

// ProgressSnapshot is the monitor's point-in-time progress document — the
// schema served by the /progress endpoint.
type ProgressSnapshot = monitor.Snapshot

// ProcessTrace is one process's parsed Chrome trace plus its process
// metadata, as read by ReadProcessTrace and consumed by MergeTraces.
type ProcessTrace = monitor.ProcessTrace

// NewMonitor returns an enabled progress monitor for Config.Monitor.
func NewMonitor() *Monitor { return monitor.New() }

// MergeTraces aligns per-process Chrome traces onto the shared board
// timeline; ReadProcessTrace parses one process's exported trace file.
var (
	MergeTraces      = monitor.MergeTraces
	ReadProcessTrace = monitor.ReadTraceFile
)

// WriteTraceFile writes a recorded trace to path: Chrome trace_event JSON
// by default (load in chrome://tracing or https://ui.perfetto.dev), span
// JSONL when path ends in .jsonl.
func WriteTraceFile(path string, t *Tracer) error { return telemetry.WriteTraceFile(path, t) }

// WriteMetricsFile writes a deterministic JSON snapshot of the registry.
func WriteMetricsFile(path string, r *MetricsRegistry) error {
	return telemetry.WriteMetricsFile(path, r)
}

// Report re-exports the communication report type.
type Report = comm.Report

// Result is a protocol run's outcome.
type Result struct {
	// Outputs maps each client to its outputs in gate order.
	Outputs map[int][]Value
	// Report is the communication breakdown by phase and category.
	Report Report
	// Excluded lists roles caught cheating or crashed.
	Excluded []string
	// Rounds is the number of sequential broadcast rounds the run used.
	Rounds int
}

// FromConfig builds core protocol parameters from a Config.
func (c Config) coreParams() (core.Params, error) {
	var adv *yoso.Adversary
	if c.Malicious > 0 || c.FailStops > 0 || c.Leaky > 0 {
		adv = &yoso.Adversary{Malicious: c.Malicious, FailStops: c.FailStops, Leaky: c.Leaky, Seed: c.Seed}
	}
	params := core.Params{
		N: c.N, T: c.T, K: c.K, Adversary: adv, Robust: c.Robust, Workers: c.Workers,
		Trace: c.Trace, Metrics: c.Metrics, Proc: c.Proc,
	}
	switch c.Backend {
	case Real:
		te, err := tte.NewThreshold(paillier.FixedTestKey(0))
		if err != nil {
			return core.Params{}, err
		}
		params.TE = te
		params.PKE = pke.NewECIES()
	default:
		params.TE = tte.NewSim(2048)
		params.PKE = pke.NewSim()
	}
	return params, nil
}

// attachMonitor subscribes the configured progress monitor to the run's
// board (and its metrics to the configured registry). Nil-safe throughout.
func attachMonitor(cfg Config, board *transport.Board) {
	if cfg.Monitor == nil {
		return
	}
	cfg.Monitor.Instrument(cfg.Metrics)
	cfg.Monitor.AttachBoard(board)
}

// Run executes the paper's packed YOSO MPC protocol on the circuit with
// the given per-client inputs.
func Run(cfg Config, circ *Circuit, inputs map[int][]Value) (*Result, error) {
	params, err := cfg.coreParams()
	if err != nil {
		return nil, err
	}
	proto, err := core.New(params, circ, nil)
	if err != nil {
		return nil, err
	}
	attachMonitor(cfg, proto.Board())
	if cfg.MirrorAddr != "" {
		mirror, err := transport.AttachMirror(proto.Board(), cfg.MirrorAddr)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			mirror.Instrument(cfg.Metrics)
		}
		defer func() { _ = mirror.Close() }()
	}
	res, err := proto.Run(inputs)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: res.Outputs, Report: res.Report, Excluded: res.Excluded, Rounds: res.Rounds}, nil
}

// Prepared carries the outcome of the preprocessing phases, ready for one
// online execution.
type Prepared struct {
	inner *core.Prepared
}

// Prepare runs the setup and offline phases ahead of time; the returned
// value supports exactly one Execute once inputs are known. This is the
// deployment-realistic split the offline/online paradigm is about.
func Prepare(cfg Config, circ *Circuit) (*Prepared, error) {
	params, err := cfg.coreParams()
	if err != nil {
		return nil, err
	}
	proto, err := core.New(params, circ, nil)
	if err != nil {
		return nil, err
	}
	attachMonitor(cfg, proto.Board())
	inner, err := proto.Prepare()
	if err != nil {
		return nil, err
	}
	return &Prepared{inner: inner}, nil
}

// OfflineReport returns the bytes spent by setup + offline so far.
func (p *Prepared) OfflineReport() Report { return p.inner.OfflineReport() }

// Execute runs the online phase; the preprocessing is single-use.
func (p *Prepared) Execute(inputs map[int][]Value) (*Result, error) {
	res, err := p.inner.Execute(inputs)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: res.Outputs, Report: res.Report, Excluded: res.Excluded, Rounds: res.Rounds}, nil
}

// RunBaseline executes the CDN-style baseline (Gentry et al., CRYPTO 2021)
// with committee size N and threshold T; K is ignored.
func RunBaseline(cfg Config, circ *Circuit, inputs map[int][]Value) (*Result, error) {
	var adv *yoso.Adversary
	if cfg.Malicious > 0 || cfg.FailStops > 0 || cfg.Leaky > 0 {
		adv = &yoso.Adversary{Malicious: cfg.Malicious, FailStops: cfg.FailStops, Leaky: cfg.Leaky, Seed: cfg.Seed}
	}
	params := baseline.Params{N: cfg.N, T: cfg.T, Adversary: adv}
	switch cfg.Backend {
	case Real:
		te, err := tte.NewThreshold(paillier.FixedTestKey(0))
		if err != nil {
			return nil, err
		}
		params.TE = te
		params.PKE = pke.NewECIES()
	default:
		params.TE = tte.NewSim(2048)
		params.PKE = pke.NewSim()
	}
	proto, err := baseline.New(params, circ, nil)
	if err != nil {
		return nil, err
	}
	res, err := proto.Run(inputs)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: res.Outputs, Report: res.Report, Excluded: res.Excluded, Rounds: res.Rounds}, nil
}

// SortitionResult re-exports the Section 6 analysis row.
type SortitionResult = sortition.Result

// AnalyzeSortition computes committee parameters (t, c, c′, ε, k) for a
// sortition parameter C and global corruption ratio f (paper Section 6).
func AnalyzeSortition(c int, f float64) (SortitionResult, error) {
	return sortition.Analyze(c, f)
}

// Table1 regenerates the paper's Table 1 as formatted text.
func Table1() string {
	return sortition.FormatTable(sortition.Table1())
}

// ConfigFromSortition derives a protocol Config from the sortition
// analysis, optionally halving the packing factor for fail-stop tolerance
// (paper §5.4). The returned config uses the Sim backend, as sortition
// committee sizes are large.
func ConfigFromSortition(r SortitionResult, failStopTolerant bool) Config {
	n, t, k, _ := r.CommitteeFor(failStopTolerant)
	return Config{N: n, T: t, K: k, Backend: Sim}
}
